// Package machine assembles the simulated shared-memory multiprocessor:
// P processors, each with a private two-level cache hierarchy, joined by a
// snooping MSI bus. It provides the two machine presets from Table 1 of
// the paper (the 4-way Pentium Pro PC server and the 8-way SGI Power Onyx
// R10000), the cross-processor control-transfer cost, and the
// bounded-outstanding-miss overlap model used to combine access latencies.
package machine

import (
	"fmt"

	"repro/internal/cache"
)

// PrefetchConfig models compiler-inserted software prefetching (the paper
// attributes the R10000's insensitivity to helper prefetching to MIPSpro's
// inserted prefetches). When enabled, the interpreter issues a prefetch
// Distance lines ahead for every reference whose stride is statically
// known, at IssueCost cycles per prefetch; indirect references are not
// covered, matching a compiler's static analysis.
type PrefetchConfig struct {
	Enabled   bool
	Distance  int   // lines of lookahead
	IssueCost int64 // cycles charged per issued prefetch instruction
}

// Engine selects the simulator implementation used for a machine's
// processors. Both engines produce bit-identical results — same cycle
// counts, same event counters, same LRU decisions — the choice only
// trades simulation speed against implementation simplicity. The
// differential tests in internal/cascade assert that equivalence.
type Engine int

const (
	// EngineFast is the default: loop bodies run from compiled access
	// plans (internal/interp) and each hierarchy short-circuits accesses
	// that land in the MRU L1 line of the previous access
	// (internal/cache). This is what experiment sweeps use.
	EngineFast Engine = iota
	// EngineReference is the original unoptimized path: the loop IR is
	// re-interpreted every iteration and every access walks the full
	// TLB/L1/L2/bus lookup. It exists as the oracle for differential
	// testing.
	EngineReference
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineFast:
		return "fast"
	case EngineReference:
		return "reference"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Coalesce selects whether the fast engine may retire same-line access
// runs analytically (cache.Hierarchy.AccessRun and the compiled runner's
// window coalescing) instead of walking the cache state machine once per
// access. Like Engine, the knob cannot change simulated results — the
// differential tests in internal/cascade assert bit-identical metrics
// with coalescing on and off — it exists so a suspected coalescing bug
// can be ruled out with one configuration change, and so such diagnostic
// runs get distinct result-cache keys (see CanonicalBytes).
type Coalesce int

const (
	// CoalesceAuto (the zero value) enables run coalescing whenever the
	// fast engine is selected. The reference engine never coalesces.
	CoalesceAuto Coalesce = iota
	// CoalesceOn is an explicit CoalesceAuto: coalescing rides on the
	// fast engine's compiled plans, so it cannot be forced onto the
	// reference interpreter.
	CoalesceOn
	// CoalesceOff disables run coalescing even on the fast engine; every
	// access walks the state machine individually.
	CoalesceOff
)

// String implements fmt.Stringer.
func (c Coalesce) String() string {
	switch c {
	case CoalesceAuto:
		return "auto"
	case CoalesceOn:
		return "on"
	case CoalesceOff:
		return "off"
	default:
		return fmt.Sprintf("Coalesce(%d)", int(c))
	}
}

// Parallel selects whether the fast engine may simulate the machine's
// processors on concurrent host goroutines. Like Engine and Coalesce,
// the knob cannot change simulated results: the parallel scheduler only
// admits a chunk to concurrent execution when it can prove the chunk's
// cache/bus behaviour is independent of everything else in flight (see
// internal/cascade), and falls back to the exact serial path otherwise.
// The differential tests in internal/cascade assert bit-identical
// metrics with the knob on and off. It exists so a suspected scheduler
// bug can be ruled out with one configuration change, and so diagnostic
// serial runs keep distinct result-cache keys (see CanonicalBytes).
type Parallel int

const (
	// ParallelOff (the zero value) keeps simulation single-goroutine;
	// this is the pre-knob behaviour.
	ParallelOff Parallel = iota
	// ParallelOn lets the fast engine's cascade runner execute provably
	// independent chunks on concurrent worker goroutines. The reference
	// engine is always serial regardless of this knob.
	ParallelOn
)

// String implements fmt.Stringer.
func (p Parallel) String() string {
	switch p {
	case ParallelOff:
		return "off"
	case ParallelOn:
		return "on"
	default:
		return fmt.Sprintf("Parallel(%d)", int(p))
	}
}

// Config describes one simulated machine.
type Config struct {
	Name     string
	Procs    int
	ClockMHz int // informational; reported in Table 1 output

	// Engine selects the simulation implementation (fast compiled plans
	// versus the reference interpreter); it does not affect simulated
	// results, only wall-clock speed. The zero value is EngineFast.
	Engine Engine

	// Coalesce controls the fast engine's run coalescing; the zero value
	// (CoalesceAuto) enables it. Like Engine it cannot affect simulated
	// results, only wall-clock speed.
	Coalesce Coalesce

	// Parallel controls whether the fast engine may run the simulated
	// processors on concurrent host goroutines; the zero value
	// (ParallelOff) keeps simulation serial. Like Engine and Coalesce it
	// cannot affect simulated results, only wall-clock speed.
	Parallel Parallel

	L1, L2     cache.Config
	MemLatency int64 // main-memory supply latency in cycles
	MemDesc    string

	// C2CLatency is the cost of a cache-to-cache supply (remote Modified
	// owner flushes the line). On the paper's bus-based machines this is
	// comparable to a memory access.
	C2CLatency int64
	// UpgradeLatency is the cost of an invalidation broadcast when a write
	// hits a line that remote caches also hold.
	UpgradeLatency int64

	// MaxOutstanding bounds the number of overlapping demand-miss
	// latencies within one iteration's access group. Both paper machines
	// have non-blocking caches with four outstanding requests, but on
	// 1997-era cores the dependency-chained loops of this evaluation
	// achieved essentially no demand-miss overlap (a ~40-entry reorder
	// buffer holds about one iteration); the paper's own Figure 7 — a 16x
	// sparse speedup — is arithmetically impossible against a baseline
	// with 4-wide miss overlap. The presets therefore model demand misses
	// serially (1); the hardware's outstanding-request capability shows up
	// in the prefetch paths and the store buffer instead.
	MaxOutstanding int

	// StoreBuffered models the machines' store buffers: stores perform
	// full coherence work but do not stall the instruction stream.
	StoreBuffered bool

	// TLB models the data TLB; a zero value disables translation costs.
	TLB cache.TLBConfig

	// VictimEntries, when positive, attaches a fully-associative victim
	// buffer of that many lines beside each L1 (Jouppi); VictimLatency is
	// the extra cost of a victim hit. Neither paper machine had one —
	// this is an extension for the what-if ablation.
	VictimEntries int
	VictimLatency int64

	// TransferCycles is the measured cost of passing control between
	// processors (shared-memory flag set + observation): 120 on the
	// Pentium Pro, 500 on the R10000.
	TransferCycles int64

	// CheckpointEvery, when positive, asks checkpoint-aware run drivers
	// (cascade.Run with a checkpoint sink installed) to capture a
	// machine-state checkpoint each time this many iterations complete.
	// Zero means no cadence (a sink still gets per-chunk checkpoints).
	// Pure observability: it cannot change simulated results, and it is
	// excluded from canonical cache keys (see CanonicalBytes).
	CheckpointEvery int

	CompilerPrefetch PrefetchConfig
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("machine %s: need at least 1 processor, got %d", c.Name, c.Procs)
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("machine %s: %w", c.Name, err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("machine %s: %w", c.Name, err)
	}
	if c.L2.LineSize%c.L1.LineSize != 0 {
		return fmt.Errorf("machine %s: L2 line %dB not a multiple of L1 line %dB",
			c.Name, c.L2.LineSize, c.L1.LineSize)
	}
	if c.MemLatency <= 0 {
		return fmt.Errorf("machine %s: non-positive memory latency", c.Name)
	}
	if c.MaxOutstanding < 1 {
		return fmt.Errorf("machine %s: MaxOutstanding must be >= 1", c.Name)
	}
	if c.TransferCycles < 0 {
		return fmt.Errorf("machine %s: negative transfer cost", c.Name)
	}
	if c.CompilerPrefetch.Enabled && c.CompilerPrefetch.Distance < 1 {
		return fmt.Errorf("machine %s: compiler prefetch enabled with distance %d",
			c.Name, c.CompilerPrefetch.Distance)
	}
	if err := c.TLB.Validate(); err != nil {
		return fmt.Errorf("machine %s: %w", c.Name, err)
	}
	if c.Engine != EngineFast && c.Engine != EngineReference {
		return fmt.Errorf("machine %s: unknown engine %d", c.Name, int(c.Engine))
	}
	if c.Coalesce != CoalesceAuto && c.Coalesce != CoalesceOn && c.Coalesce != CoalesceOff {
		return fmt.Errorf("machine %s: unknown coalesce mode %d", c.Name, int(c.Coalesce))
	}
	if c.Parallel != ParallelOff && c.Parallel != ParallelOn {
		return fmt.Errorf("machine %s: unknown parallel mode %d", c.Name, int(c.Parallel))
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("machine %s: negative checkpoint cadence %d", c.Name, c.CheckpointEvery)
	}
	return nil
}

// CoalesceEnabled resolves the Coalesce knob against the engine choice:
// run coalescing is active on the fast engine unless explicitly disabled,
// and never on the reference engine.
func (c Config) CoalesceEnabled() bool {
	return c.Engine == EngineFast && c.Coalesce != CoalesceOff
}

// WithCoalesce returns a copy of the configuration with the given run-
// coalescing mode (used by the differential coalescing tests).
func (c Config) WithCoalesce(mode Coalesce) Config {
	c.Coalesce = mode
	return c
}

// ParallelEnabled resolves the Parallel knob against the engine choice:
// concurrent simulation is only ever attempted on the fast engine, and
// only when explicitly requested.
func (c Config) ParallelEnabled() bool {
	return c.Engine == EngineFast && c.Parallel == ParallelOn
}

// WithParallel returns a copy of the configuration with the given
// parallel-simulation mode (used by the differential parallel tests).
func (c Config) WithParallel(mode Parallel) Config {
	c.Parallel = mode
	return c
}

// WithEngine returns a copy of the configuration running on the given
// simulation engine (used by the differential fast-path tests).
func (c Config) WithEngine(e Engine) Config {
	c.Engine = e
	return c
}

// WithProcs returns a copy of the configuration with a different processor
// count (used by the Figure 2 processor sweep).
func (c Config) WithProcs(p int) Config {
	c.Procs = p
	return c
}

// WithVictim returns a copy of the configuration with a victim buffer of
// the given capacity and hit latency (entries 0 disables it).
func (c Config) WithVictim(entries int, latency int64) Config {
	c.VictimEntries = entries
	c.VictimLatency = latency
	return c
}

// PentiumPro returns the 4-processor 200 MHz Pentium Pro PC-server
// configuration from Table 1: L1 8KB/2-way/32B at 3 cycles, L2
// 512KB/4-way/32B at 7 cycles, memory at 58 cycles, 120-cycle control
// transfer, up to 4 outstanding misses, no compiler prefetching.
func PentiumPro(procs int) Config {
	return Config{
		Name:     "PentiumPro",
		Procs:    procs,
		ClockMHz: 200,
		L1:       cache.Config{Name: "L1", Size: 8 * 1024, Assoc: 2, LineSize: 32, HitLatency: 3},
		L2:       cache.Config{Name: "L2", Size: 512 * 1024, Assoc: 4, LineSize: 32, HitLatency: 7},

		MemLatency: 58,
		MemDesc:    "58",
		// Model parameters, not Table 1 figures: a cache-to-cache supply
		// on the P6 bus costs about a memory access. An invalidation
		// broadcast (BusUpgr) is an address-only transaction and the
		// store that triggers it retires through the store buffer, so
		// only a small issue cost reaches the execution time.
		C2CLatency:     58,
		UpgradeLatency: 12,
		MaxOutstanding: 1,
		StoreBuffered:  true,
		TransferCycles: 120,
		// 64-entry 4-way data TLB, 4KB pages, hardware page walk.
		TLB: cache.TLBConfig{Entries: 64, Assoc: 4, PageSize: 4096, MissLatency: 25},
	}
}

// R10000 returns the 8-processor 194 MHz SGI Power Onyx configuration from
// Table 1: L1 32KB/2-way/32B at 3 cycles, L2 2MB/2-way/128B at 6 cycles,
// memory at 100-200 cycles (modelled as 150), 500-cycle control transfer,
// up to 4 outstanding misses, and MIPSpro-style compiler prefetching of
// strided references.
func R10000(procs int) Config {
	return Config{
		Name:     "R10000",
		Procs:    procs,
		ClockMHz: 194,
		L1:       cache.Config{Name: "L1", Size: 32 * 1024, Assoc: 2, LineSize: 32, HitLatency: 3},
		L2:       cache.Config{Name: "L2", Size: 2 * 1024 * 1024, Assoc: 2, LineSize: 128, HitLatency: 6},

		MemLatency:     150,
		MemDesc:        "100-200",
		C2CLatency:     150,
		UpgradeLatency: 20,
		MaxOutstanding: 1,
		StoreBuffered:  true,
		TransferCycles: 500,
		// 64-entry fully-associative TLB, 4KB base pages, software refill.
		TLB: cache.TLBConfig{Entries: 64, Assoc: 64, PageSize: 4096, MissLatency: 70},
		CompilerPrefetch: PrefetchConfig{
			Enabled:   true,
			Distance:  8,
			IssueCost: 1,
		},
	}
}

// Presets returns the machine configurations evaluated in the paper, at
// their full processor counts.
func Presets() []Config {
	return []Config{PentiumPro(4), R10000(8)}
}
