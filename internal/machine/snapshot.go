package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/metrics"
)

// Snapshot is a copy-on-write capture of a machine's full simulated
// state: every processor's hierarchy (L1, L2, TLB, victim buffer), the
// coherence bus's transaction shards, and the metrics registry. Cache
// line arrays are sealed, not copied — taking a snapshot and forking
// from it are both O(components); a fork pays to copy only the
// components its tail actually writes (see internal/cache/snapshot.go).
//
// Snapshots must be taken at quiescent points: no in-flight coalesced
// access runs (any chunk boundary qualifies) and the bus out of the
// parallel scheduler's isolated mode. The metrics capture includes run-
// driver counters and phase timers, so a resumed run can seed its timers
// with the prefix's cycles and the PR 1 conservation identities keep
// holding across the fork boundary: prefix metrics + tail deltas equal a
// fresh full run's metrics.
type Snapshot struct {
	cfg     Config
	hiers   []*cache.HierarchyState
	bus     []coherence.Stats
	metrics metrics.Snapshot
}

// Config returns the configuration of the snapshotted machine.
func (s *Snapshot) Config() Config { return s.cfg }

// Metrics returns the metrics capture taken with the snapshot (all
// registered sources, run-driver timers included).
func (s *Snapshot) Metrics() metrics.Snapshot { return s.metrics }

// MemBytes estimates the host memory retained by the snapshot's sealed
// component state: every processor's cache data and tag arrays plus TLB
// and victim-buffer entries, bounded by the configured geometries. It is
// an upper-bound estimate for cache admission accounting (the snapshot
// LRU's byte ceiling), not an exact measurement — sealed arrays are
// shared copy-on-write with their machine, so the marginal cost of
// keeping a snapshot is at most this figure.
func (s *Snapshot) MemBytes() int64 {
	// Data arrays dominate; tags, state words, and TLB/victim metadata
	// are covered by the 2x factor.
	per := int64(s.cfg.L1.Size+s.cfg.L2.Size) * 2
	return int64(len(s.hiers)) * per
}

// Snapshot captures the machine's state. The machine keeps running
// afterwards; its next write to a sealed component copies that
// component first. It errors if the bus is isolated or a classification
// shadow is attached (both incompatible with cheap sealing).
func (m *Machine) Snapshot() (*Snapshot, error) {
	if m.bus.Isolated() {
		return nil, fmt.Errorf("machine %s: cannot snapshot while the bus is isolated", m.cfg.Name)
	}
	s := &Snapshot{cfg: m.cfg, metrics: m.reg.Snapshot()}
	for _, p := range m.procs {
		hs, err := p.h.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("machine %s p%d: %w", m.cfg.Name, p.id, err)
		}
		s.hiers = append(s.hiers, hs)
	}
	s.bus = m.bus.SnapshotShards()
	return s, nil
}

// forkCompatible checks that a machine built from cfg can adopt the
// snapshot's component state. Simulation-speed knobs (Engine, Coalesce,
// Parallel) and latency parameters may differ — they change how the tail
// is simulated or charged, not the shape of the captured state — but the
// structural fields must match.
func (s *Snapshot) forkCompatible(cfg Config) error {
	base := s.cfg
	switch {
	case cfg.Procs != base.Procs:
		return fmt.Errorf("machine: fork changes processor count %d -> %d", base.Procs, cfg.Procs)
	case cfg.L1 != base.L1:
		return fmt.Errorf("machine: fork changes L1 geometry")
	case cfg.L2 != base.L2:
		return fmt.Errorf("machine: fork changes L2 geometry")
	case cfg.TLB != base.TLB:
		return fmt.Errorf("machine: fork changes TLB geometry")
	case cfg.VictimEntries != base.VictimEntries:
		return fmt.Errorf("machine: fork changes victim-buffer size %d -> %d", base.VictimEntries, cfg.VictimEntries)
	}
	return nil
}

// Restore points the machine's components at the snapshot's sealed state
// (copy-on-write) and clears every fast-path hint. Components are
// mutated in place, so metrics-registry registrations taken at
// construction remain valid. The machine must be fork-compatible with
// the snapshot.
func (m *Machine) Restore(s *Snapshot) error {
	if err := s.forkCompatible(m.cfg); err != nil {
		return err
	}
	if m.bus.Isolated() {
		return fmt.Errorf("machine %s: cannot restore while the bus is isolated", m.cfg.Name)
	}
	for i, p := range m.procs {
		if err := p.h.Restore(s.hiers[i]); err != nil {
			return fmt.Errorf("machine %s p%d: %w", m.cfg.Name, i, err)
		}
	}
	m.bus.RestoreShards(s.bus)
	return nil
}

// Fork builds a fresh machine whose caches, TLBs, victim buffers, and
// bus counters start exactly where the snapshot left them, sharing the
// snapshot's storage copy-on-write until first write. Options adjust the
// fork's configuration (engine, coalescing, parallelism, checkpoint
// cadence, latencies); structural fields must stay fork-compatible.
//
// A fork's fast-path hints (line memos, TLB hint table) start empty
// rather than inheriting the parent's. Hints are verified search
// shortcuts — they affect wall-clock speed only — so the fork is
// observably identical to the machine the snapshot was taken from.
func (s *Snapshot) Fork(opts ...Option) (*Machine, error) {
	cfg := s.cfg
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := s.forkCompatible(cfg); err != nil {
		return nil, err
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.Restore(s); err != nil {
		return nil, err
	}
	return m, nil
}

// SharedComponents reports which components still share snapshot storage
// (never written since the last snapshot or restore), as names like
// "p0.l1", "p2.tlb" — the per-fork dirty map: everything NOT listed has
// been copied and privately mutated.
func (m *Machine) SharedComponents() []string {
	var out []string
	for i, p := range m.procs {
		for _, c := range p.h.SharedComponents() {
			out = append(out, fmt.Sprintf("p%d.%s", i, c))
		}
	}
	return out
}

// ProcState is one processor's resident-state summary in an Inspect.
type ProcState struct {
	Proc      int             `json:"proc"`
	Occupancy cache.Occupancy `json:"occupancy"`
}

// Inspect is a read-only rendering of a snapshot for replay/inspection
// endpoints ("show me the cache state at iteration k"). Producing it
// scans the sealed arrays without copying them or building a machine.
type Inspect struct {
	Machine string           `json:"machine"`
	Procs   []ProcState      `json:"procs"`
	Bus     coherence.Stats  `json:"bus"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// Inspect summarizes the snapshot's state.
func (s *Snapshot) Inspect() Inspect {
	out := Inspect{Machine: s.cfg.Name, Metrics: s.metrics}
	for i, h := range s.hiers {
		out.Procs = append(out.Procs, ProcState{Proc: i, Occupancy: h.Occupancy()})
	}
	for _, sh := range s.bus {
		out.Bus.MemFetches += sh.MemFetches
		out.Bus.CacheToCache += sh.CacheToCache
		out.Bus.InvalidationsOut += sh.InvalidationsOut
		out.Bus.Upgrades += sh.Upgrades
		out.Bus.Writebacks += sh.Writebacks
	}
	return out
}
