package cache

import (
	"testing"

	"repro/internal/memsim"
)

// coalesceHier builds a small hierarchy with a TLB and coalescing
// enabled, alongside a twin with coalescing disabled, both over their own
// memory sources.
func coalesceHier() *Hierarchy {
	h := NewHierarchy(
		Config{Name: "L1", Size: 512, Assoc: 2, LineSize: 32, HitLatency: 3},
		Config{Name: "L2", Size: 4096, Assoc: 4, LineSize: 32, HitLatency: 7},
		&MemorySource{Latency: 50},
	)
	h.TLB = NewTLB(TLBConfig{Entries: 8, Assoc: 2, PageSize: 4096, MissLatency: 25})
	h.FastPath = true
	h.Coalesce = true
	return h
}

// statsEqual asserts two hierarchies are in bit-identical statistical
// states: every L1/L2/TLB counter and the memory fetch count.
func statsEqual(t *testing.T, a, b *Hierarchy, label string) {
	t.Helper()
	if a.L1.Stats() != b.L1.Stats() {
		t.Errorf("%s: L1 stats diverge:\ncoalesced %+v\nreference %+v", label, a.L1.Stats(), b.L1.Stats())
	}
	if a.L2.Stats() != b.L2.Stats() {
		t.Errorf("%s: L2 stats diverge:\ncoalesced %+v\nreference %+v", label, a.L2.Stats(), b.L2.Stats())
	}
	if a.TLB.Stats() != b.TLB.Stats() {
		t.Errorf("%s: TLB stats diverge:\ncoalesced %+v\nreference %+v", label, a.TLB.Stats(), b.TLB.Stats())
	}
	if a.Source.(*MemorySource).Fetches != b.Source.(*MemorySource).Fetches {
		t.Errorf("%s: memory fetches diverge: coalesced %d, reference %d",
			label, a.Source.(*MemorySource).Fetches, b.Source.(*MemorySource).Fetches)
	}
}

// TestAccessRunMatchesPerAccess drives AccessRun and an equivalent
// per-access loop over twin hierarchies and demands identical aggregate
// Results and identical statistics, across strides, sizes, write modes,
// and run lengths that cross lines and pages.
func TestAccessRunMatchesPerAccess(t *testing.T) {
	cases := []struct {
		name        string
		base        memsim.Addr
		size        int
		count       int
		strideBytes int
		write       bool
	}{
		{"unit-read", 0x1000, 8, 64, 8, false},
		{"unit-write", 0x2000, 8, 64, 8, true},
		{"int-stream", 0x3004, 4, 100, 4, false},
		{"strided", 0x4000, 8, 40, 16, false},
		{"negative", 0x5100, 8, 30, -8, true},
		{"zero-stride", 0x6010, 8, 50, 0, false},
		{"cross-page", 0xFE0, 8, 16, 8, false},
		{"single", 0x7000, 8, 1, 8, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hc, hr := coalesceHier(), coalesceHier()
			hr.Coalesce = false

			got := hc.AccessRun(tc.base, tc.size, tc.count, tc.strideBytes, tc.write)
			var want Result
			for k := 0; k < tc.count; k++ {
				r := hr.Access(tc.base+memsim.Addr(k*tc.strideBytes), tc.size, tc.write)
				want.Cycles += r.Cycles
				want.MissPenalty += r.MissPenalty
				if r.Level > want.Level {
					want.Level = r.Level
				}
			}
			if got != want {
				t.Errorf("aggregate result diverges: coalesced %+v, per-access %+v", got, want)
			}
			statsEqual(t, hc, hr, tc.name)
		})
	}
}

// TestAccessRunPreservesLRU checks that retirement leaves the same
// eviction order behind as per-access execution: after interleaving runs
// on two arrays and overflowing the set, both twins must evict the same
// victim (observable as identical miss counts on a revisit).
func TestAccessRunPreservesLRU(t *testing.T) {
	hc, hr := coalesceHier(), coalesceHier()
	hr.Coalesce = false

	// Three line-sized streams through the 2-way L1: a, b touched via
	// runs on the coalescing twin, then c forces an eviction; revisiting
	// a and b shows which one survived.
	const lineA, lineB, lineC = 0x10000, 0x10200, 0x10400 // same L1 set (Size 512, 2-way: sets stride 256)
	for _, h := range []*Hierarchy{hc, hr} {
		h.Access(lineA, 8, false)
		h.Access(lineB, 8, false)
	}
	hc.AccessRun(lineA+8, 8, 3, 8, false) // re-touches a: now MRU
	for k := 0; k < 3; k++ {
		hr.Access(lineA+memsim.Addr(8+8*k), 8, false)
	}
	for _, h := range []*Hierarchy{hc, hr} {
		h.Access(lineC, 8, false) // evicts the LRU of {a, b} = b
		h.Access(lineA, 8, false) // must still hit
		h.Access(lineB, 8, false) // must miss
	}
	statsEqual(t, hc, hr, "lru")
}

// TestBeginRunLegality exercises the legality predicate's refusal cases
// one by one.
func TestBeginRunLegality(t *testing.T) {
	h := coalesceHier()
	const addr = 0x1000

	if _, ok := h.BeginRun(addr, 8, false); ok {
		t.Error("BeginRun verified a non-resident line")
	}
	h.Access(addr, 8, false) // fill Shared
	if _, ok := h.BeginRun(addr+8, 8, false); !ok {
		t.Error("BeginRun refused a resident read hit")
	}
	if _, ok := h.BeginRun(addr+8, 8, true); ok {
		t.Error("BeginRun verified a write on a Shared line")
	}
	h.Access(addr, 8, true) // upgrade to Modified
	if _, ok := h.BeginRun(addr+8, 8, true); !ok {
		t.Error("BeginRun refused a write hit on a Modified line")
	}
	if _, ok := h.BeginRun(addr+28, 8, false); ok {
		t.Error("BeginRun verified a line-spanning access")
	}
	if _, ok := h.BeginRun(addr, 0, false); ok {
		t.Error("BeginRun verified a zero-size access")
	}
	h.Coalesce = false
	if _, ok := h.BeginRun(addr+8, 8, false); ok {
		t.Error("BeginRun verified with coalescing disabled")
	}
	h.Coalesce = true
	h.L1.EnableClassification()
	if _, ok := h.BeginRun(addr+8, 8, false); ok {
		t.Error("BeginRun verified with a miss-classification shadow attached")
	}
	if h.CoalesceActive() {
		t.Error("CoalesceActive with a classification shadow attached")
	}
}

// TestRetireTokenMatchesPerAccess retires hit batches through a token and
// demands the exact statistics of the equivalent per-access hit walks.
func TestRetireTokenMatchesPerAccess(t *testing.T) {
	hc, hr := coalesceHier(), coalesceHier()
	hr.Coalesce = false
	const addr = 0x2000
	hc.Access(addr, 8, true)
	hr.Access(addr, 8, true)

	tok, ok := hc.BeginRun(addr+8, 8, true)
	if !ok {
		t.Fatal("BeginRun failed on a just-written line")
	}
	hc.RetireToken(tok, 3)
	for k := 1; k <= 3; k++ {
		hr.Access(addr+memsim.Addr(8*k), 8, true)
	}
	statsEqual(t, hc, hr, "retire")
}

// TestCoherenceInvalidateBreaksRun proves the fallback trigger: a
// verified run is no longer verifiable after a remote invalidation of
// the line, and becomes verifiable again only after a fresh demand fill.
func TestCoherenceInvalidateBreaksRun(t *testing.T) {
	h := coalesceHier()
	const addr = 0x3000
	h.Access(addr, 8, false)
	if !h.VerifyRun(addr+8, 8, false) {
		t.Fatal("run not verifiable after fill")
	}
	h.CoherenceInvalidate(memsim.Addr(addr).Line(h.L2.cfg.LineSize))
	if h.VerifyRun(addr+8, 8, false) {
		t.Error("run still verifiable after coherence invalidation")
	}
	h.Access(addr, 8, false)
	if !h.VerifyRun(addr+8, 8, false) {
		t.Error("run not verifiable after re-fill")
	}
}

// TestCoherenceDowngradeBreaksWriteRun: a downgrade demotes Modified to
// Shared, which must revoke write-run legality but keep read runs legal.
func TestCoherenceDowngradeBreaksWriteRun(t *testing.T) {
	h := coalesceHier()
	const addr = 0x4000
	h.Access(addr, 8, true)
	if !h.VerifyRun(addr+8, 8, true) {
		t.Fatal("write run not verifiable on a Modified line")
	}
	h.CoherenceDowngrade(memsim.Addr(addr).Line(h.L2.cfg.LineSize))
	if h.VerifyRun(addr+8, 8, true) {
		t.Error("write run still verifiable after downgrade to Shared")
	}
	if !h.VerifyRun(addr+8, 8, false) {
		t.Error("read run not verifiable on the downgraded (Shared) line")
	}
}

// TestRetireRunPanicsUnverified pins the checked retirement form's
// contract: retiring an unverifiable run is a programming error, not a
// silent divergence.
func TestRetireRunPanicsUnverified(t *testing.T) {
	h := coalesceHier()
	defer func() {
		if recover() == nil {
			t.Error("RetireRun did not panic on an unverified run")
		}
	}()
	h.RetireRun(0x5000, 8, 4, false) // line never filled
}
