package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memsim"
)

// testHierarchy mimics the Pentium Pro geometry at 1/8 scale so tests can
// exercise capacity effects cheaply: L1 1KB/2-way/32B/3cy, L2 8KB/4-way/32B/7cy,
// memory 58cy.
func testHierarchy() (*Hierarchy, *MemorySource) {
	src := &MemorySource{Latency: 58}
	h := NewHierarchy(
		Config{Name: "L1", Size: 1024, Assoc: 2, LineSize: 32, HitLatency: 3},
		Config{Name: "L2", Size: 8 * 1024, Assoc: 4, LineSize: 32, HitLatency: 7},
		src,
	)
	return h, src
}

// r10kLikeHierarchy has an L2 line four times the L1 line, like the R10000.
func r10kLikeHierarchy() *Hierarchy {
	src := &MemorySource{Latency: 150}
	return NewHierarchy(
		Config{Name: "L1", Size: 1024, Assoc: 2, LineSize: 32, HitLatency: 3},
		Config{Name: "L2", Size: 16 * 1024, Assoc: 2, LineSize: 128, HitLatency: 6},
		src,
	)
}

func TestAccessLatencies(t *testing.T) {
	h, _ := testHierarchy()
	addr := memsim.Addr(0x4000)

	// Cold: L1 lookup + L2 lookup + memory.
	r := h.Access(addr, 8, false)
	if r.Cycles != 3+7+58 || r.Level != LevelMem {
		t.Fatalf("cold access = %+v, want 68 cycles at mem", r)
	}
	if r.MissPenalty != 7+58 {
		t.Errorf("cold MissPenalty = %d, want 65", r.MissPenalty)
	}

	// Warm: L1 hit.
	r = h.Access(addr, 8, false)
	if r.Cycles != 3 || r.Level != LevelL1 || r.MissPenalty != 0 {
		t.Fatalf("warm access = %+v, want 3 cycles at L1", r)
	}

	// Evict from L1 but not L2, then re-access: L2 hit.
	// L1 way size = 512B; two more lines at stride 512 evict addr from its set.
	h.Access(addr+512, 8, false)
	h.Access(addr+1024, 8, false)
	r = h.Access(addr, 8, false)
	if r.Cycles != 3+7 || r.Level != LevelL2 {
		t.Fatalf("L2 access = %+v, want 10 cycles at L2", r)
	}
}

func TestAccessSizeSpanningLines(t *testing.T) {
	h, _ := testHierarchy()
	// 64 bytes starting at a line boundary touches two lines.
	r := h.Access(0x4000, 64, false)
	if r.Cycles != 2*(3+7+58) {
		t.Errorf("two-line access = %d cycles, want %d", r.Cycles, 2*(3+7+58))
	}
	if h.L1.Stats().Accesses != 2 {
		t.Errorf("L1 accesses = %d, want 2", h.L1.Stats().Accesses)
	}
}

func TestAccessZeroSizePanics(t *testing.T) {
	h, _ := testHierarchy()
	defer func() {
		if recover() == nil {
			t.Error("Access size 0 should panic")
		}
	}()
	h.Access(0x0, 0, false)
}

func TestWriteMakesModified(t *testing.T) {
	h, _ := testHierarchy()
	addr := memsim.Addr(0x100)
	h.Access(addr, 8, true)
	if st := h.L1.Probe(addr.Line(32)); st != Modified {
		t.Errorf("L1 state after write = %v, want M", st)
	}
	if st := h.Probe(addr); st != Modified {
		t.Errorf("L2 state after write = %v, want M", st)
	}
}

func TestReadThenWriteUpgrades(t *testing.T) {
	h, _ := testHierarchy()
	addr := memsim.Addr(0x100)
	h.Access(addr, 8, false)
	if st := h.Probe(addr); st != Shared {
		t.Fatalf("state after read = %v, want S", st)
	}
	h.Access(addr, 8, true)
	if st := h.Probe(addr); st != Modified {
		t.Errorf("state after write = %v, want M", st)
	}
	if up := h.L1.Stats().Upgrades + h.L2.Stats().Upgrades; up == 0 {
		t.Error("expected at least one recorded upgrade")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	h, src := testHierarchy()
	addr := memsim.Addr(0x0)
	h.Access(addr, 8, true) // dirty line
	// Walk enough distinct lines to evict addr from L2 (8KB cache): 16KB walk.
	for a := memsim.Addr(0x100000); a < 0x100000+16*1024; a += 32 {
		h.Access(a, 8, false)
	}
	if h.Probe(addr) != Invalid {
		t.Fatal("dirty line still resident; walk too small")
	}
	if src.Fetches == 0 {
		t.Error("no memory fetches recorded")
	}
	if h.L2.Stats().Writebacks == 0 {
		t.Error("dirty eviction did not count a writeback")
	}
}

func TestInclusionMaintainedUnderRandomStream(t *testing.T) {
	f := func(seed int64) bool {
		h, _ := testHierarchy()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			addr := memsim.Addr(rng.Intn(64 * 1024))
			h.Access(addr, 8, rng.Intn(3) == 0)
			if rng.Intn(10) == 0 {
				h.PrefetchLine(memsim.Addr(rng.Intn(64 * 1024)))
			}
		}
		return h.CheckInclusion() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestInclusionWithWideL2Lines(t *testing.T) {
	f := func(seed int64) bool {
		h := r10kLikeHierarchy()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			addr := memsim.Addr(rng.Intn(128 * 1024))
			h.Access(addr, 8, rng.Intn(3) == 0)
		}
		return h.CheckInclusion() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestWideL2LineSublinePromotion(t *testing.T) {
	h := r10kLikeHierarchy()
	// Touch first word: fetches the 128B L2 line, fills one 32B L1 line.
	h.Access(0x1000, 8, false)
	// Touch the last word of the same L2 line: should be an L2 hit.
	r := h.Access(0x1078, 8, false)
	if r.Level != LevelL2 {
		t.Errorf("subline access level = %v, want L2 (wide line already fetched)", r.Level)
	}
}

func TestPrefetchLine(t *testing.T) {
	h, src := testHierarchy()
	addr := memsim.Addr(0x2000)
	if fetched := h.PrefetchLine(addr); !fetched {
		t.Fatal("prefetch of absent line should fetch")
	}
	if fetched := h.PrefetchLine(addr); fetched {
		t.Error("second prefetch should be a no-op")
	}
	// Demand access now hits L1 and demand stats show no miss for it.
	r := h.Access(addr, 8, false)
	if r.Level != LevelL1 {
		t.Errorf("post-prefetch access level = %v, want L1", r.Level)
	}
	if h.L1.Stats().PrefetchFills == 0 || h.L2.Stats().PrefetchFills == 0 {
		t.Error("prefetch fills not counted")
	}
	if src.Fetches != 1 {
		t.Errorf("memory fetches = %d, want 1", src.Fetches)
	}
	// Prefetch must not inflate demand accesses: only the one demand access.
	if h.L1.Stats().Accesses != 1 {
		t.Errorf("L1 demand accesses = %d, want 1", h.L1.Stats().Accesses)
	}
}

func TestPrefetchPromotesFromL2(t *testing.T) {
	h, _ := testHierarchy()
	addr := memsim.Addr(0x3000)
	h.Access(addr, 8, false)
	// Evict from L1 only.
	h.Access(addr+512, 8, false)
	h.Access(addr+1024, 8, false)
	if h.L1.Probe(addr.Line(32)) != Invalid {
		t.Fatal("setup failed: line still in L1")
	}
	if fetched := h.PrefetchLine(addr); fetched {
		t.Error("prefetch hitting L2 should not fetch from memory")
	}
	if h.L1.Probe(addr.Line(32)) == Invalid {
		t.Error("prefetch did not promote line into L1")
	}
}

func TestCoherenceInvalidate(t *testing.T) {
	h, _ := testHierarchy()
	addr := memsim.Addr(0x100)
	h.Access(addr, 8, true)
	if !h.CoherenceInvalidate(addr.Line(32)) {
		t.Error("invalidating a Modified line should report modified")
	}
	if h.Probe(addr) != Invalid || h.L1.Probe(addr.Line(32)) != Invalid {
		t.Error("line still present after coherence invalidate")
	}
	if h.CoherenceInvalidate(addr.Line(32)) {
		t.Error("invalidating an absent line should report clean")
	}
}

func TestCoherenceDowngrade(t *testing.T) {
	h, _ := testHierarchy()
	addr := memsim.Addr(0x100)
	h.Access(addr, 8, true)
	if !h.CoherenceDowngrade(addr.Line(32)) {
		t.Error("downgrading a Modified line should report modified")
	}
	if h.Probe(addr) != Shared {
		t.Errorf("state after downgrade = %v, want S", h.Probe(addr))
	}
	if h.CoherenceDowngrade(addr.Line(32)) {
		t.Error("downgrading a Shared line should report clean")
	}
}

func TestCoherenceDowngradeWideLine(t *testing.T) {
	h := r10kLikeHierarchy()
	h.Access(0x1000, 8, true) // L1 line 0x1000 Modified, L2 line 0x1000 (128B) Modified
	l2Line := memsim.Addr(0x1000).Line(128)
	if !h.CoherenceDowngrade(l2Line) {
		t.Error("expected modified report")
	}
	if h.L1.Probe(0x1000) != Shared {
		t.Errorf("L1 subline = %v, want S", h.L1.Probe(0x1000))
	}
	if err := h.CheckInclusion(); err != nil {
		t.Errorf("inclusion violated: %v", err)
	}
}

func TestHierarchyReset(t *testing.T) {
	h, _ := testHierarchy()
	h.Access(0x0, 8, true)
	h.Reset()
	if h.L1.ValidLines() != 0 || h.L2.ValidLines() != 0 {
		t.Error("lines remain after Reset")
	}
	if h.L1.Stats().Accesses != 0 {
		t.Error("stats remain after Reset")
	}
}

func TestNewHierarchyPanics(t *testing.T) {
	l1 := Config{Name: "L1", Size: 1024, Assoc: 2, LineSize: 64, HitLatency: 3}
	l2bad := Config{Name: "L2", Size: 8192, Assoc: 4, LineSize: 32, HitLatency: 7}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("L2 line smaller than L1 line should panic")
			}
		}()
		NewHierarchy(l1, l2bad, &MemorySource{Latency: 58})
	}()
	l1big := Config{Name: "L1", Size: 16384, Assoc: 2, LineSize: 32, HitLatency: 3}
	l2small := Config{Name: "L2", Size: 8192, Assoc: 4, LineSize: 32, HitLatency: 7}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("L2 smaller than L1 should panic")
			}
		}()
		NewHierarchy(l1big, l2small, &MemorySource{Latency: 58})
	}()
}

func TestSequentialWalkMissRate(t *testing.T) {
	// A sequential walk over 8-byte elements with 32-byte lines should miss
	// once per line: miss rate 1/4 in a cold cache far larger than a line.
	h, _ := testHierarchy()
	for a := memsim.Addr(0x10000); a < 0x10000+1024; a += 8 {
		h.Access(a, 8, false)
	}
	s := h.L1.Stats()
	if s.Accesses != 128 || s.Misses != 32 {
		t.Errorf("walk: accesses=%d misses=%d, want 128/32", s.Accesses, s.Misses)
	}
}

func TestConflictingArraysThrash(t *testing.T) {
	// Two arrays at the same way-size congruence accessed alternately in a
	// 2-way L1 coexist; three thrash. This is the phenomenon restructuring
	// eliminates, so the model must reproduce it.
	h, _ := testHierarchy() // L1 way size 512
	base := []memsim.Addr{0x10000, 0x10000 + 512, 0x10000 + 1024}
	// Warm all three lines (same L1 set).
	for _, b := range base {
		h.Access(b, 8, false)
	}
	l1Before := h.L1.Stats().Misses
	for i := 0; i < 30; i++ {
		for _, b := range base {
			h.Access(b, 8, false)
		}
	}
	thrash := h.L1.Stats().Misses - l1Before
	if thrash < 60 { // 3 lines in a 2-way set: ~every access misses
		t.Errorf("conflict thrashing produced only %d L1 misses in 90 accesses", thrash)
	}
}
