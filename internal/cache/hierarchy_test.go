package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memsim"
)

// testHierarchy mimics the Pentium Pro geometry at 1/8 scale so tests can
// exercise capacity effects cheaply: L1 1KB/2-way/32B/3cy, L2 8KB/4-way/32B/7cy,
// memory 58cy.
func testHierarchy() (*Hierarchy, *MemorySource) {
	src := &MemorySource{Latency: 58}
	h := NewHierarchy(
		Config{Name: "L1", Size: 1024, Assoc: 2, LineSize: 32, HitLatency: 3},
		Config{Name: "L2", Size: 8 * 1024, Assoc: 4, LineSize: 32, HitLatency: 7},
		src,
	)
	return h, src
}

// r10kLikeHierarchy has an L2 line four times the L1 line, like the R10000.
func r10kLikeHierarchy() *Hierarchy {
	src := &MemorySource{Latency: 150}
	return NewHierarchy(
		Config{Name: "L1", Size: 1024, Assoc: 2, LineSize: 32, HitLatency: 3},
		Config{Name: "L2", Size: 16 * 1024, Assoc: 2, LineSize: 128, HitLatency: 6},
		src,
	)
}

func TestAccessLatencies(t *testing.T) {
	h, _ := testHierarchy()
	addr := memsim.Addr(0x4000)

	// Cold: L1 lookup + L2 lookup + memory.
	r := h.Access(addr, 8, false)
	if r.Cycles != 3+7+58 || r.Level != LevelMem {
		t.Fatalf("cold access = %+v, want 68 cycles at mem", r)
	}
	if r.MissPenalty != 7+58 {
		t.Errorf("cold MissPenalty = %d, want 65", r.MissPenalty)
	}

	// Warm: L1 hit.
	r = h.Access(addr, 8, false)
	if r.Cycles != 3 || r.Level != LevelL1 || r.MissPenalty != 0 {
		t.Fatalf("warm access = %+v, want 3 cycles at L1", r)
	}

	// Evict from L1 but not L2, then re-access: L2 hit.
	// L1 way size = 512B; two more lines at stride 512 evict addr from its set.
	h.Access(addr+512, 8, false)
	h.Access(addr+1024, 8, false)
	r = h.Access(addr, 8, false)
	if r.Cycles != 3+7 || r.Level != LevelL2 {
		t.Fatalf("L2 access = %+v, want 10 cycles at L2", r)
	}
}

func TestAccessSizeSpanningLines(t *testing.T) {
	h, _ := testHierarchy()
	// 64 bytes starting at a line boundary touches two lines.
	r := h.Access(0x4000, 64, false)
	if r.Cycles != 2*(3+7+58) {
		t.Errorf("two-line access = %d cycles, want %d", r.Cycles, 2*(3+7+58))
	}
	if h.L1.Stats().Accesses != 2 {
		t.Errorf("L1 accesses = %d, want 2", h.L1.Stats().Accesses)
	}
}

func TestAccessZeroSizePanics(t *testing.T) {
	h, _ := testHierarchy()
	defer func() {
		if recover() == nil {
			t.Error("Access size 0 should panic")
		}
	}()
	h.Access(0x0, 0, false)
}

func TestWriteMakesModified(t *testing.T) {
	h, _ := testHierarchy()
	addr := memsim.Addr(0x100)
	h.Access(addr, 8, true)
	if st := h.L1.Probe(addr.Line(32)); st != Modified {
		t.Errorf("L1 state after write = %v, want M", st)
	}
	if st := h.Probe(addr); st != Modified {
		t.Errorf("L2 state after write = %v, want M", st)
	}
}

func TestReadThenWriteUpgrades(t *testing.T) {
	h, _ := testHierarchy()
	addr := memsim.Addr(0x100)
	h.Access(addr, 8, false)
	if st := h.Probe(addr); st != Shared {
		t.Fatalf("state after read = %v, want S", st)
	}
	h.Access(addr, 8, true)
	if st := h.Probe(addr); st != Modified {
		t.Errorf("state after write = %v, want M", st)
	}
	if up := h.L1.Stats().Upgrades + h.L2.Stats().Upgrades; up == 0 {
		t.Error("expected at least one recorded upgrade")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	h, src := testHierarchy()
	addr := memsim.Addr(0x0)
	h.Access(addr, 8, true) // dirty line
	// Walk enough distinct lines to evict addr from L2 (8KB cache): 16KB walk.
	for a := memsim.Addr(0x100000); a < 0x100000+16*1024; a += 32 {
		h.Access(a, 8, false)
	}
	if h.Probe(addr) != Invalid {
		t.Fatal("dirty line still resident; walk too small")
	}
	if src.Fetches == 0 {
		t.Error("no memory fetches recorded")
	}
	if h.L2.Stats().Writebacks == 0 {
		t.Error("dirty eviction did not count a writeback")
	}
}

func TestInclusionMaintainedUnderRandomStream(t *testing.T) {
	f := func(seed int64) bool {
		h, _ := testHierarchy()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			addr := memsim.Addr(rng.Intn(64 * 1024))
			h.Access(addr, 8, rng.Intn(3) == 0)
			if rng.Intn(10) == 0 {
				h.PrefetchLine(memsim.Addr(rng.Intn(64 * 1024)))
			}
		}
		return h.CheckInclusion() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestInclusionWithWideL2Lines(t *testing.T) {
	f := func(seed int64) bool {
		h := r10kLikeHierarchy()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			addr := memsim.Addr(rng.Intn(128 * 1024))
			h.Access(addr, 8, rng.Intn(3) == 0)
		}
		return h.CheckInclusion() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestWideL2LineSublinePromotion(t *testing.T) {
	h := r10kLikeHierarchy()
	// Touch first word: fetches the 128B L2 line, fills one 32B L1 line.
	h.Access(0x1000, 8, false)
	// Touch the last word of the same L2 line: should be an L2 hit.
	r := h.Access(0x1078, 8, false)
	if r.Level != LevelL2 {
		t.Errorf("subline access level = %v, want L2 (wide line already fetched)", r.Level)
	}
}

func TestPrefetchLine(t *testing.T) {
	h, src := testHierarchy()
	addr := memsim.Addr(0x2000)
	if fetched := h.PrefetchLine(addr); !fetched {
		t.Fatal("prefetch of absent line should fetch")
	}
	if fetched := h.PrefetchLine(addr); fetched {
		t.Error("second prefetch should be a no-op")
	}
	// Demand access now hits L1 and demand stats show no miss for it.
	r := h.Access(addr, 8, false)
	if r.Level != LevelL1 {
		t.Errorf("post-prefetch access level = %v, want L1", r.Level)
	}
	if h.L1.Stats().PrefetchFills == 0 || h.L2.Stats().PrefetchFills == 0 {
		t.Error("prefetch fills not counted")
	}
	if src.Fetches != 1 {
		t.Errorf("memory fetches = %d, want 1", src.Fetches)
	}
	// Prefetch must not inflate demand accesses: only the one demand access.
	if h.L1.Stats().Accesses != 1 {
		t.Errorf("L1 demand accesses = %d, want 1", h.L1.Stats().Accesses)
	}
}

func TestPrefetchPromotesFromL2(t *testing.T) {
	h, _ := testHierarchy()
	addr := memsim.Addr(0x3000)
	h.Access(addr, 8, false)
	// Evict from L1 only.
	h.Access(addr+512, 8, false)
	h.Access(addr+1024, 8, false)
	if h.L1.Probe(addr.Line(32)) != Invalid {
		t.Fatal("setup failed: line still in L1")
	}
	if fetched := h.PrefetchLine(addr); fetched {
		t.Error("prefetch hitting L2 should not fetch from memory")
	}
	if h.L1.Probe(addr.Line(32)) == Invalid {
		t.Error("prefetch did not promote line into L1")
	}
}

func TestCoherenceInvalidate(t *testing.T) {
	h, _ := testHierarchy()
	addr := memsim.Addr(0x100)
	h.Access(addr, 8, true)
	if !h.CoherenceInvalidate(addr.Line(32)) {
		t.Error("invalidating a Modified line should report modified")
	}
	if h.Probe(addr) != Invalid || h.L1.Probe(addr.Line(32)) != Invalid {
		t.Error("line still present after coherence invalidate")
	}
	if h.CoherenceInvalidate(addr.Line(32)) {
		t.Error("invalidating an absent line should report clean")
	}
}

func TestCoherenceDowngrade(t *testing.T) {
	h, _ := testHierarchy()
	addr := memsim.Addr(0x100)
	h.Access(addr, 8, true)
	if !h.CoherenceDowngrade(addr.Line(32)) {
		t.Error("downgrading a Modified line should report modified")
	}
	if h.Probe(addr) != Shared {
		t.Errorf("state after downgrade = %v, want S", h.Probe(addr))
	}
	if h.CoherenceDowngrade(addr.Line(32)) {
		t.Error("downgrading a Shared line should report clean")
	}
}

func TestCoherenceDowngradeWideLine(t *testing.T) {
	h := r10kLikeHierarchy()
	h.Access(0x1000, 8, true) // L1 line 0x1000 Modified, L2 line 0x1000 (128B) Modified
	l2Line := memsim.Addr(0x1000).Line(128)
	if !h.CoherenceDowngrade(l2Line) {
		t.Error("expected modified report")
	}
	if h.L1.Probe(0x1000) != Shared {
		t.Errorf("L1 subline = %v, want S", h.L1.Probe(0x1000))
	}
	if err := h.CheckInclusion(); err != nil {
		t.Errorf("inclusion violated: %v", err)
	}
}

func TestHierarchyReset(t *testing.T) {
	h, _ := testHierarchy()
	h.Access(0x0, 8, true)
	h.Reset()
	if h.L1.ValidLines() != 0 || h.L2.ValidLines() != 0 {
		t.Error("lines remain after Reset")
	}
	if h.L1.Stats().Accesses != 0 {
		t.Error("stats remain after Reset")
	}
}

func TestNewHierarchyPanics(t *testing.T) {
	l1 := Config{Name: "L1", Size: 1024, Assoc: 2, LineSize: 64, HitLatency: 3}
	l2bad := Config{Name: "L2", Size: 8192, Assoc: 4, LineSize: 32, HitLatency: 7}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("L2 line smaller than L1 line should panic")
			}
		}()
		NewHierarchy(l1, l2bad, &MemorySource{Latency: 58})
	}()
	l1big := Config{Name: "L1", Size: 16384, Assoc: 2, LineSize: 32, HitLatency: 3}
	l2small := Config{Name: "L2", Size: 8192, Assoc: 4, LineSize: 32, HitLatency: 7}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("L2 smaller than L1 should panic")
			}
		}()
		NewHierarchy(l1big, l2small, &MemorySource{Latency: 58})
	}()
}

func TestSequentialWalkMissRate(t *testing.T) {
	// A sequential walk over 8-byte elements with 32-byte lines should miss
	// once per line: miss rate 1/4 in a cold cache far larger than a line.
	h, _ := testHierarchy()
	for a := memsim.Addr(0x10000); a < 0x10000+1024; a += 8 {
		h.Access(a, 8, false)
	}
	s := h.L1.Stats()
	if s.Accesses != 128 || s.Misses != 32 {
		t.Errorf("walk: accesses=%d misses=%d, want 128/32", s.Accesses, s.Misses)
	}
}

func TestConflictingArraysThrash(t *testing.T) {
	// Two arrays at the same way-size congruence accessed alternately in a
	// 2-way L1 coexist; three thrash. This is the phenomenon restructuring
	// eliminates, so the model must reproduce it.
	h, _ := testHierarchy() // L1 way size 512
	base := []memsim.Addr{0x10000, 0x10000 + 512, 0x10000 + 1024}
	// Warm all three lines (same L1 set).
	for _, b := range base {
		h.Access(b, 8, false)
	}
	l1Before := h.L1.Stats().Misses
	for i := 0; i < 30; i++ {
		for _, b := range base {
			h.Access(b, 8, false)
		}
	}
	thrash := h.L1.Stats().Misses - l1Before
	if thrash < 60 { // 3 lines in a 2-way set: ~every access misses
		t.Errorf("conflict thrashing produced only %d L1 misses in 90 accesses", thrash)
	}
}

// fullHierarchy is testHierarchy plus a TLB and a victim buffer, so every
// optional stat-bearing component is present.
func fullHierarchy() (*Hierarchy, *MemorySource) {
	h, src := testHierarchy()
	h.TLB = NewTLB(TLBConfig{Entries: 8, Assoc: 2, PageSize: 4096, MissLatency: 20})
	h.EnableVictimBuffer(4, 2)
	return h, src
}

// churn drives enough mixed traffic through h that every component's
// primary counters go non-zero (L1/L2 misses, TLB misses, victim inserts
// and hits, memory fetches).
func churn(h *Hierarchy) {
	// Thrash one L1 set (way size 512) so evictions feed the victim buffer
	// and re-accesses hit it; spread over pages for TLB misses.
	for i := 0; i < 20; i++ {
		for _, b := range []memsim.Addr{0x10000, 0x10000 + 512, 0x10000 + 1024} {
			h.Access(b, 8, i%3 == 0)
		}
		h.Access(memsim.Addr(0x40000+i*4096), 8, false)
	}
}

// collectMetrics flattens every StatSource counter of h into one map.
func collectMetrics(h *Hierarchy) map[string]int64 {
	out := map[string]int64{}
	for _, s := range h.StatSources() {
		name := s.Name
		s.EmitMetrics(func(counter string, v int64) {
			out[name+"."+counter] = v
		})
	}
	return out
}

// TestResetStatsZeroesEveryCounter is the regression test for the
// victim-stats leak: ResetStats must zero exactly the counter set Reset
// zeroes, swept generically over every StatSource so a newly added
// component cannot reintroduce the leak class.
func TestResetStatsZeroesEveryCounter(t *testing.T) {
	for _, reset := range []struct {
		name string
		do   func(h *Hierarchy)
	}{
		{"ResetStats", func(h *Hierarchy) { h.ResetStats() }},
		{"Reset", func(h *Hierarchy) { h.Reset() }},
	} {
		h, _ := fullHierarchy()
		churn(h)
		before := collectMetrics(h)
		for _, key := range []string{"l1.misses", "l2.misses", "tlb.misses", "victim.inserts", "victim.hits", "mem.fetches"} {
			if before[key] == 0 {
				t.Fatalf("churn produced no %s; test traffic too weak", key)
			}
		}
		reset.do(h)
		for name, v := range collectMetrics(h) {
			if v != 0 {
				t.Errorf("%s left %s = %d, want 0", reset.name, name, v)
			}
		}
	}
}

// TestResetStatsVictimLeak pins the original bug directly: victim-buffer
// counters must not survive ResetStats.
func TestResetStatsVictimLeak(t *testing.T) {
	h, _ := fullHierarchy()
	churn(h)
	if h.VictimStats() == (VictimStats{}) {
		t.Fatal("churn produced no victim-buffer activity")
	}
	h.ResetStats()
	if s := h.VictimStats(); s != (VictimStats{}) {
		t.Errorf("victim stats survive ResetStats: %+v", s)
	}
}

// TestResetStatsKeepsContents distinguishes the two reset flavours:
// ResetStats must preserve cache, TLB, and victim-buffer contents.
func TestResetStatsKeepsContents(t *testing.T) {
	h, _ := fullHierarchy()
	addr := memsim.Addr(0x4000)
	h.Access(addr, 8, false)
	h.ResetStats()
	if r := h.Access(addr, 8, false); r.Level != LevelL1 {
		t.Errorf("post-ResetStats access level = %v, want L1 (contents kept)", r.Level)
	}
	h.Reset()
	h.ResetStats() // fresh stats for the cold access below
	if r := h.Access(addr, 8, false); r.Level != LevelMem {
		t.Errorf("post-Reset access level = %v, want mem (contents dropped)", r.Level)
	}
}

func TestAccessSpansLines(t *testing.T) {
	h, _ := testHierarchy() // 32B L1 lines
	// A 16-byte access at line offset 24 spans two L1 lines.
	addr := memsim.Addr(0x4000 + 24)

	// Cold: both lines miss to memory. Latency and penalty aggregate.
	r := h.Access(addr, 16, false)
	if want := int64(2 * (3 + 7 + 58)); r.Cycles != want {
		t.Errorf("cold spanning access = %d cycles, want %d", r.Cycles, want)
	}
	if want := int64(2 * (7 + 58)); r.MissPenalty != want {
		t.Errorf("cold spanning MissPenalty = %d, want %d", r.MissPenalty, want)
	}
	if r.Level != LevelMem {
		t.Errorf("cold spanning Level = %v, want mem", r.Level)
	}
	if acc := h.L1.Stats().Accesses; acc != 2 {
		t.Errorf("spanning access counted %d L1 lookups, want 2", acc)
	}

	// Warm: both lines hit L1.
	r = h.Access(addr, 16, false)
	if r.Cycles != 6 || r.Level != LevelL1 || r.MissPenalty != 0 {
		t.Errorf("warm spanning access = %+v, want 6 cycles at L1", r)
	}

	// Evict only the second line (0x4020) from L1 (its set's two ways are
	// refilled at way-size stride): first line hits L1, second hits L2, and
	// Level must report the deepest level touched.
	h.Access(0x4020+512, 8, false)
	h.Access(0x4020+1024, 8, false)
	r = h.Access(addr, 16, false)
	if want := int64(3 + (3 + 7)); r.Cycles != want {
		t.Errorf("mixed spanning access = %d cycles, want %d", r.Cycles, want)
	}
	if r.Level != LevelL2 {
		t.Errorf("mixed spanning Level = %v, want L2 (max over lines)", r.Level)
	}
	if r.MissPenalty != 7 {
		t.Errorf("mixed spanning MissPenalty = %d, want 7", r.MissPenalty)
	}
}

func TestAccessSpanningWithTLBWalk(t *testing.T) {
	h, _ := fullHierarchy()
	h.Reset()
	// Spanning access on a fresh TLB: one page walk is charged once, on
	// top of both lines' memory latency.
	r := h.Access(0x4000+24, 16, false)
	if want := int64(20 + 2*(3+7+58)); r.Cycles != want {
		t.Errorf("spanning access with TLB walk = %d cycles, want %d", r.Cycles, want)
	}
	if s := h.TLB.Stats(); s.Accesses != 1 || s.Misses != 1 {
		t.Errorf("TLB stats = %+v, want one access, one miss", s)
	}
}
