// Package cache implements the set-associative, write-back, write-allocate
// cache model and the two-level private hierarchy used by the cascaded
// execution simulator.
//
// Lines carry MSI coherence states so the same model serves both a
// uniprocessor hierarchy (states degenerate to valid/dirty) and the bus-based
// multiprocessor in internal/coherence. Timing is expressed in cycles; the
// hierarchy reports, per access, the level that satisfied it and the total
// latency, which the interpreter combines with a bounded-outstanding-miss
// overlap model (the paper's machines allow four outstanding requests).
package cache

import (
	"fmt"

	"repro/internal/memsim"
)

// Config describes one cache level.
type Config struct {
	Name       string // e.g. "L1", "L2"
	Size       int    // total capacity in bytes (power of two)
	Assoc      int    // associativity (power of two)
	LineSize   int    // line size in bytes (power of two)
	HitLatency int64  // access latency in cycles when the line is present
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case !memsim.IsPow2(c.Size):
		return fmt.Errorf("cache %s: size %d not a power of two", c.Name, c.Size)
	case !memsim.IsPow2(c.Assoc):
		return fmt.Errorf("cache %s: associativity %d not a power of two", c.Name, c.Assoc)
	case !memsim.IsPow2(c.LineSize):
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineSize)
	case c.Size < c.Assoc*c.LineSize:
		return fmt.Errorf("cache %s: size %d smaller than one set (%d ways x %d bytes)",
			c.Name, c.Size, c.Assoc, c.LineSize)
	case c.HitLatency < 0:
		return fmt.Errorf("cache %s: negative hit latency %d", c.Name, c.HitLatency)
	}
	return nil
}

// NumSets returns the number of sets.
func (c Config) NumSets() int { return c.Size / (c.Assoc * c.LineSize) }

// NumLines returns the total number of lines.
func (c Config) NumLines() int { return c.Size / c.LineSize }

// WaySize returns the number of bytes covered by one way: addresses equal
// modulo WaySize map to the same set. This is the modulus used to engineer
// set conflicts.
func (c Config) WaySize() int { return c.Size / c.Assoc }

// String summarises the geometry, e.g. "L1 8KB/2-way/32B/3cy".
func (c Config) String() string {
	return fmt.Sprintf("%s %dKB/%d-way/%dB/%dcy", c.Name, c.Size/1024, c.Assoc, c.LineSize, c.HitLatency)
}

// State is the MSI coherence state of a cache line. In a uniprocessor
// hierarchy, Shared means "present and clean" and Modified means "present
// and dirty".
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: present, read-only, clean.
	Shared
	// Modified: present, writable, dirty; this cache owns the only copy.
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}
