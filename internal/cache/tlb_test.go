package cache

import (
	"testing"

	"repro/internal/memsim"
)

func tlbConfig() TLBConfig {
	return TLBConfig{Entries: 8, Assoc: 2, PageSize: 4096, MissLatency: 25}
}

func TestTLBConfigValidate(t *testing.T) {
	if err := tlbConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (TLBConfig{}).Validate(); err != nil {
		t.Errorf("disabled config should validate: %v", err)
	}
	bad := []TLBConfig{
		{Entries: 7, Assoc: 1, PageSize: 4096},
		{Entries: 8, Assoc: 3, PageSize: 4096},
		{Entries: 8, Assoc: 16, PageSize: 4096},
		{Entries: 8, Assoc: 2, PageSize: 1000},
		{Entries: 8, Assoc: 2, PageSize: 4096, MissLatency: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewTLBDisabled(t *testing.T) {
	if NewTLB(TLBConfig{}) != nil {
		t.Error("disabled config should yield nil TLB")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(tlbConfig())
	if cost := tlb.Access(0x1000); cost != 25 {
		t.Errorf("cold access cost = %d, want 25", cost)
	}
	if cost := tlb.Access(0x1FF8); cost != 0 {
		t.Errorf("same-page access cost = %d, want 0", cost)
	}
	if cost := tlb.Access(0x2000); cost != 25 {
		t.Errorf("next-page access cost = %d, want 25", cost)
	}
	s := tlb.Stats()
	if s.Accesses != 3 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.MissRate(); got < 0.66 || got > 0.67 {
		t.Errorf("miss rate = %v", got)
	}
}

func TestTLBLRUWithinSet(t *testing.T) {
	tlb := NewTLB(tlbConfig()) // 4 sets, 2 ways
	// Pages 0, 4, 8 map to set 0 (set = page % 4).
	page := func(k int) memsim.Addr { return memsim.Addr(k * 4096) }
	tlb.Access(page(0))
	tlb.Access(page(4))
	tlb.Access(page(0)) // page 0 most recent; 4 is LRU
	tlb.Access(page(8)) // evicts 4
	if cost := tlb.Access(page(0)); cost != 0 {
		t.Error("page 0 should still be mapped")
	}
	if cost := tlb.Access(page(4)); cost == 0 {
		t.Error("page 4 should have been evicted")
	}
}

func TestTLBReach(t *testing.T) {
	tlb := NewTLB(tlbConfig())
	if got := tlb.Reach(); got != 8*4096 {
		t.Errorf("Reach = %d", got)
	}
}

func TestTLBResets(t *testing.T) {
	tlb := NewTLB(tlbConfig())
	tlb.Access(0x0)
	tlb.ResetStats()
	if tlb.Stats() != (TLBStats{}) {
		t.Error("ResetStats failed")
	}
	if cost := tlb.Access(0x0); cost != 0 {
		t.Error("ResetStats must keep translations")
	}
	tlb.Reset()
	if cost := tlb.Access(0x0); cost == 0 {
		t.Error("Reset must drop translations")
	}
}

func TestHierarchyChargesTLBWalks(t *testing.T) {
	src := &MemorySource{Latency: 58}
	h := NewHierarchy(
		Config{Name: "L1", Size: 1024, Assoc: 2, LineSize: 32, HitLatency: 3},
		Config{Name: "L2", Size: 8 * 1024, Assoc: 4, LineSize: 32, HitLatency: 7},
		src,
	)
	h.TLB = NewTLB(tlbConfig())
	r := h.Access(0x4000, 8, false)
	if r.Cycles != 3+7+58+25 {
		t.Errorf("cold access with TLB walk = %d cycles, want %d", r.Cycles, 3+7+58+25)
	}
	// Walk cost must be serial (not part of the overlappable penalty).
	if r.MissPenalty != 7+58 {
		t.Errorf("MissPenalty = %d, want %d", r.MissPenalty, 7+58)
	}
	r = h.Access(0x4008, 8, false)
	if r.Cycles != 3 {
		t.Errorf("warm same-page access = %d cycles, want 3", r.Cycles)
	}
	if h.TLB.Stats().Misses != 1 {
		t.Errorf("TLB misses = %d", h.TLB.Stats().Misses)
	}
	h.Reset()
	if h.TLB.Stats().Accesses != 0 {
		t.Error("hierarchy Reset must reset the TLB")
	}
}

func TestTLBSparseWalkThrashes(t *testing.T) {
	// A walk whose stride exceeds reach/entries touches more pages than
	// the TLB maps: every page re-entry misses.
	tlb := NewTLB(tlbConfig()) // reach 32KB, 8 entries
	misses := func() int64 { return tlb.Stats().Misses }
	// Touch 16 distinct pages round-robin, twice.
	for round := 0; round < 2; round++ {
		for p := 0; p < 16; p++ {
			tlb.Access(memsim.Addr(p * 4096))
		}
	}
	if got := misses(); got != 32 {
		t.Errorf("thrashing walk misses = %d, want 32 (every access)", got)
	}
}
