package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memsim"
)

func tinyConfig() Config {
	return Config{Name: "T", Size: 256, Assoc: 2, LineSize: 32, HitLatency: 3}
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "sz", Size: 300, Assoc: 2, LineSize: 32},
		{Name: "as", Size: 256, Assoc: 3, LineSize: 32},
		{Name: "ln", Size: 256, Assoc: 2, LineSize: 33},
		{Name: "small", Size: 32, Assoc: 2, LineSize: 32},
		{Name: "lat", Size: 256, Assoc: 2, LineSize: 32, HitLatency: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q: expected validation error", c.Name)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	c := Config{Name: "L1", Size: 8 * 1024, Assoc: 2, LineSize: 32, HitLatency: 3}
	if got := c.NumSets(); got != 128 {
		t.Errorf("NumSets = %d, want 128", got)
	}
	if got := c.NumLines(); got != 256 {
		t.Errorf("NumLines = %d, want 256", got)
	}
	if got := c.WaySize(); got != 4096 {
		t.Errorf("WaySize = %d, want 4096", got)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Error("State.String mismatch")
	}
}

func TestTouchMissThenFillThenHit(t *testing.T) {
	c := New(tinyConfig())
	addr := memsim.Addr(0x1000)
	if hit, _ := c.Touch(addr, false); hit {
		t.Fatal("empty cache should miss")
	}
	c.Fill(addr, Shared, false)
	if hit, st := c.Touch(addr, false); !hit || st != Shared {
		t.Fatalf("after fill: hit=%v st=%v, want hit Shared", hit, st)
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(tinyConfig()) // 4 sets, 2 ways, way size 128
	// Three lines mapping to the same set (stride = 4 sets * 32B = 128B).
	a, b, d := memsim.Addr(0x0), memsim.Addr(0x80), memsim.Addr(0x100)
	c.Fill(a, Shared, false)
	c.Fill(b, Shared, false)
	c.Touch(a, false) // a most recent; b is LRU
	v := c.Fill(d, Shared, false)
	if !v.Valid || v.Addr != b {
		t.Fatalf("victim = %+v, want eviction of %s", v, b)
	}
	if c.Probe(a) == Invalid || c.Probe(d) == Invalid {
		t.Error("a and d should be present")
	}
	if c.Probe(b) != Invalid {
		t.Error("b should have been evicted")
	}
}

func TestFillPrefersInvalidWay(t *testing.T) {
	c := New(tinyConfig())
	a := memsim.Addr(0x0)
	c.Fill(a, Shared, false)
	v := c.Fill(memsim.Addr(0x80), Shared, false) // same set, free way
	if v.Valid {
		t.Errorf("fill into non-full set evicted %+v", v)
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := New(tinyConfig())
	c.Fill(memsim.Addr(0x0), Modified, false)
	c.Fill(memsim.Addr(0x80), Shared, false)
	v := c.Fill(memsim.Addr(0x100), Shared, false)
	if !v.Valid || !v.Modified || v.Addr != 0x0 {
		t.Fatalf("victim = %+v, want modified eviction of 0x0", v)
	}
	if s := c.Stats(); s.Writebacks != 1 || s.Evictions != 1 {
		t.Errorf("stats = %+v, want 1 writeback, 1 eviction", s)
	}
}

func TestFillDuplicatePanics(t *testing.T) {
	c := New(tinyConfig())
	c.Fill(0x0, Shared, false)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Fill should panic")
		}
	}()
	c.Fill(0x0, Shared, false)
}

func TestFillInvalidStatePanics(t *testing.T) {
	c := New(tinyConfig())
	defer func() {
		if recover() == nil {
			t.Error("Fill(Invalid) should panic")
		}
	}()
	c.Fill(0x0, Invalid, false)
}

func TestSetStateAndUpgradeCount(t *testing.T) {
	c := New(tinyConfig())
	c.Fill(0x0, Shared, false)
	if !c.SetState(0x0, Modified) {
		t.Fatal("SetState on present line returned false")
	}
	if c.Probe(0x0) != Modified {
		t.Error("state not Modified after SetState")
	}
	if s := c.Stats(); s.Upgrades != 1 {
		t.Errorf("Upgrades = %d, want 1", s.Upgrades)
	}
	if c.SetState(0x999000, Modified) {
		t.Error("SetState on absent line returned true")
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	c := New(tinyConfig())
	c.Fill(0x0, Modified, false)
	if prior := c.Downgrade(0x0); prior != Modified {
		t.Errorf("Downgrade prior = %v, want Modified", prior)
	}
	if c.Probe(0x0) != Shared {
		t.Error("line should be Shared after downgrade")
	}
	if prior := c.Downgrade(0x0); prior != Shared {
		t.Errorf("second Downgrade prior = %v, want Shared", prior)
	}
	if prior := c.Invalidate(0x0); prior != Shared {
		t.Errorf("Invalidate prior = %v, want Shared", prior)
	}
	if c.Probe(0x0) != Invalid {
		t.Error("line should be gone after invalidate")
	}
	if prior := c.Invalidate(0x0); prior != Invalid {
		t.Errorf("Invalidate absent prior = %v, want Invalid", prior)
	}
	s := c.Stats()
	if s.Invalidations != 1 || s.Downgrades != 1 {
		t.Errorf("stats = %+v, want 1 invalidation, 1 downgrade", s)
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := New(tinyConfig())
	c.Fill(0x0, Modified, false)
	c.Touch(0x0, true)
	c.Reset()
	if c.ValidLines() != 0 {
		t.Error("lines remain after Reset")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("stats after Reset = %+v", s)
	}
}

func TestForEachLineDeterministic(t *testing.T) {
	c := New(tinyConfig())
	c.Fill(0x0, Shared, false)
	c.Fill(0x20, Modified, false)
	var got []memsim.Addr
	c.ForEachLine(func(a memsim.Addr, _ State) { got = append(got, a) })
	if len(got) != 2 {
		t.Fatalf("ForEachLine visited %d lines, want 2", len(got))
	}
	if c.ValidLines() != 2 {
		t.Errorf("ValidLines = %d, want 2", c.ValidLines())
	}
}

func TestCacheCapacityNeverExceeded(t *testing.T) {
	cfg := tinyConfig()
	c := New(cfg)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		addr := memsim.Addr(rng.Intn(1 << 14)).Line(cfg.LineSize)
		if hit, _ := c.Touch(addr, rng.Intn(2) == 0); !hit {
			c.Fill(addr, Shared, false)
		}
		if c.ValidLines() > cfg.NumLines() {
			t.Fatalf("valid lines %d exceeds capacity %d", c.ValidLines(), cfg.NumLines())
		}
	}
}

// TestLRUPropertyHitAfterFewerDistinct: after touching line X, accessing
// fewer than Assoc other distinct lines in the same set must leave X
// resident (the defining LRU property).
func TestLRUPropertyHitAfterFewerDistinct(t *testing.T) {
	cfg := tinyConfig()
	f := func(seed int64) bool {
		c := New(cfg)
		rng := rand.New(rand.NewSource(seed))
		set := memsim.Addr(rng.Intn(cfg.NumSets()))
		lineOf := func(k int) memsim.Addr {
			return (set + memsim.Addr(k*cfg.NumSets())) * memsim.Addr(cfg.LineSize)
		}
		x := lineOf(0)
		c.Fill(x, Shared, false)
		// Touch Assoc-1 other lines in the same set.
		for k := 1; k < cfg.Assoc; k++ {
			a := lineOf(k)
			if hit, _ := c.Touch(a, false); !hit {
				c.Fill(a, Shared, false)
			}
		}
		hit, _ := c.Touch(x, false)
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClassification(t *testing.T) {
	cfg := tinyConfig() // 8 lines total, 2-way, 4 sets
	c := New(cfg)
	c.EnableClassification()
	line := func(k int) memsim.Addr { return memsim.Addr(k * cfg.LineSize) }

	// First touch of anything: compulsory.
	c.Touch(line(0), false)
	c.Fill(line(0), Shared, false)
	if s := c.Stats(); s.Compulsory != 1 {
		t.Fatalf("Compulsory = %d, want 1", s.Compulsory)
	}

	// Conflict: three lines in one set (stride 4 lines), cache otherwise
	// empty, so a fully-associative cache would hold all three.
	c.Reset()
	c.EnableClassification()
	for _, k := range []int{0, 4, 8} { // same set in a 4-set cache
		c.Touch(line(k), false)
		c.Fill(line(k), Shared, false)
	}
	c.Touch(line(0), false) // evicted by set conflict, present in shadow
	if s := c.Stats(); s.Conflict != 1 {
		t.Fatalf("Conflict = %d, want 1 (stats %+v)", s.Conflict, s)
	}

	// Capacity: touch more distinct lines than the cache holds, then
	// re-touch the first; even a fully-associative cache would have
	// evicted it.
	c.Reset()
	c.EnableClassification()
	for k := 0; k < cfg.NumLines()+1; k++ {
		c.Touch(line(k), false)
		if c.Probe(line(k)) == Invalid {
			c.Fill(line(k), Shared, false)
		}
	}
	c.Touch(line(0), false)
	if s := c.Stats(); s.Capacity != 1 {
		t.Fatalf("Capacity = %d, want 1 (stats %+v)", s.Capacity, s)
	}
}

func TestClassificationPartition(t *testing.T) {
	// Property: compulsory + capacity + conflict == misses, always.
	cfg := tinyConfig()
	f := func(seed int64) bool {
		c := New(cfg)
		c.EnableClassification()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			addr := memsim.Addr(rng.Intn(1 << 12)).Line(cfg.LineSize)
			if hit, _ := c.Touch(addr, false); !hit {
				c.Fill(addr, Shared, false)
			}
		}
		s := c.Stats()
		return s.Compulsory+s.Capacity+s.Conflict == s.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 10, Hits: 7, Misses: 3, Conflict: 1}
	b := Stats{Accesses: 5, Hits: 1, Misses: 4, Compulsory: 4}
	a.Add(b)
	if a.Accesses != 15 || a.Hits != 8 || a.Misses != 7 || a.Conflict != 1 || a.Compulsory != 4 {
		t.Errorf("Add result = %+v", a)
	}
}

func TestStatsMissRate(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Error("empty MissRate should be 0")
	}
	s := Stats{Accesses: 4, Misses: 1}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", got)
	}
}
