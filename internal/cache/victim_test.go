package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memsim"
)

func victimHierarchy(entries int) *Hierarchy {
	src := &MemorySource{Latency: 58}
	h := NewHierarchy(
		Config{Name: "L1", Size: 1024, Assoc: 2, LineSize: 32, HitLatency: 3},
		Config{Name: "L2", Size: 8 * 1024, Assoc: 4, LineSize: 32, HitLatency: 7},
		src,
	)
	h.EnableVictimBuffer(entries, 2)
	return h
}

func TestVictimBufferCatchesConflictEvictions(t *testing.T) {
	h := victimHierarchy(4)
	// Three lines in one L1 set (way size 512): thrash without a victim
	// buffer, but all three fit L1(2) + victim(4).
	lines := []memsim.Addr{0x0, 0x200, 0x400}
	for _, a := range lines {
		h.Access(a, 8, false)
	}
	statsBefore := h.L1.Stats()
	for i := 0; i < 30; i++ {
		for _, a := range lines {
			r := h.Access(a, 8, false)
			if r.Cycles > 3+2 {
				t.Fatalf("access to %s cost %d cycles; victim buffer should cap at 5", a, r.Cycles)
			}
		}
	}
	_ = statsBefore
	if h.VictimStats().Hits == 0 {
		t.Error("no victim hits recorded")
	}
}

func TestVictimDisabledByDefault(t *testing.T) {
	src := &MemorySource{Latency: 58}
	h := NewHierarchy(
		Config{Name: "L1", Size: 1024, Assoc: 2, LineSize: 32, HitLatency: 3},
		Config{Name: "L2", Size: 8 * 1024, Assoc: 4, LineSize: 32, HitLatency: 7},
		src,
	)
	if h.VictimStats() != (VictimStats{}) {
		t.Error("stats nonzero without a buffer")
	}
	h.EnableVictimBuffer(0, 2)
	h.Access(0x0, 8, false)
	if h.VictimStats() != (VictimStats{}) {
		t.Error("zero-entry buffer should stay disabled")
	}
}

func TestVictimPreservesDirtyState(t *testing.T) {
	h := victimHierarchy(4)
	a := memsim.Addr(0x0)
	h.Access(a, 8, true) // a Modified in L1
	// Evict a from L1 via two same-set fills.
	h.Access(0x200, 8, false)
	h.Access(0x400, 8, false)
	// Victim hit must restore Modified so a subsequent write needs no
	// upgrade.
	r := h.Access(a, 8, false)
	if r.Cycles != 3+2 {
		t.Fatalf("victim hit cost %d, want 5", r.Cycles)
	}
	if st := h.L1.Probe(a); st != Modified {
		t.Errorf("state after victim restore = %v, want M", st)
	}
}

func TestVictimCoherenceInvalidate(t *testing.T) {
	h := victimHierarchy(4)
	a := memsim.Addr(0x0)
	h.Access(a, 8, true)
	h.Access(0x200, 8, false)
	h.Access(0x400, 8, false) // a now lives in the victim buffer
	if !h.CoherenceInvalidate(a.Line(32)) {
		t.Error("invalidate should report the victim buffer's Modified copy")
	}
	// The line must be gone everywhere: re-access fetches from memory.
	r := h.Access(a, 8, false)
	if r.Level != LevelMem {
		t.Errorf("level after invalidate = %v, want mem", r.Level)
	}
}

func TestVictimCoherenceDowngrade(t *testing.T) {
	h := victimHierarchy(4)
	a := memsim.Addr(0x0)
	h.Access(a, 8, true)
	h.Access(0x200, 8, false)
	h.Access(0x400, 8, false)
	if !h.CoherenceDowngrade(a.Line(32)) {
		t.Error("downgrade should report the victim buffer's Modified copy")
	}
}

func TestVictimRandomStreamConsistency(t *testing.T) {
	// With a victim buffer attached, inclusion and the single-location
	// invariant (a line is in L1 or the buffer, never both) must survive
	// arbitrary access streams.
	f := func(seed int64) bool {
		h := victimHierarchy(8)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			addr := memsim.Addr(rng.Intn(32 * 1024))
			h.Access(addr, 8, rng.Intn(3) == 0)
		}
		if h.CheckInclusion() != nil {
			return false
		}
		// No line present both in L1 and the buffer.
		dup := false
		h.L1.ForEachLine(func(addr memsim.Addr, _ State) {
			for _, e := range h.victims.entries {
				if e.state != Invalid && e.addr == addr {
					dup = true
				}
			}
		})
		return !dup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestVictimReset(t *testing.T) {
	h := victimHierarchy(2)
	h.Access(0x0, 8, false)
	h.Access(0x200, 8, false)
	h.Access(0x400, 8, false)
	h.Reset()
	if h.VictimStats().Inserts != 0 {
		t.Error("Reset kept victim stats")
	}
	r := h.Access(0x0, 8, false)
	if r.Level != LevelMem {
		t.Error("Reset kept victim contents")
	}
}
