package cache

import (
	"fmt"

	"repro/internal/memsim"
)

// Copy-on-write snapshots of hierarchy state.
//
// Snapshot seals every component's backing array: the state struct
// aliases the live slice and the component is marked copy-on-write, so
// the next mutation — by the snapshotted hierarchy itself (which keeps
// running) or by a hierarchy the snapshot was restored into — copies the
// array into private storage first. Taking or restoring a snapshot is
// therefore O(components), not O(lines), and a fork whose tail never
// touches a component shares that component's storage for the whole run.
//
// The pointer-hint discipline is the load-bearing invariant here. The
// fast paths hold raw pointers into the backing arrays (Cache.last, the
// TLB hint table, the hierarchy's same-line memo, RunTokens) and mutate
// through them without a lookup. A pointer into a sealed array would
// write through the seal, corrupting every snapshot sharing it. Two
// rules prevent that:
//
//  1. every operation that mutates a backing array or yields a pointer
//     into one calls own() first (lookup, Fill, Access, entryPtr, the
//     victim buffer's mutators, Reset), so escaped pointers always point
//     into private storage;
//  2. sealing clears the component's pointer hints (last, hints, memo),
//     so pointers predating the seal cannot be used after it.
//
// touchFast/touchRun assert the invariant: they are only reachable via
// pointers from rule 1, so observing cow there is a bug.
//
// Snapshots must be taken at quiescent points: no outstanding RunTokens
// (token lifetimes are window-scoped in the interpreter, so any chunk
// boundary qualifies) and no classification shadow attached (the shadow
// holds per-access history that sealing cannot capture cheaply).

// own gives the cache private backing storage and drops pointer hints.
func (c *Cache) own() {
	if !c.cow {
		return
	}
	fresh := make([]line, len(c.sets))
	copy(fresh, c.sets)
	c.sets = fresh
	c.cow = false
	c.last = nil
}

// Shared reports whether the cache still shares sealed snapshot storage.
func (c *Cache) Shared() bool { return c.cow }

// CacheState is a sealed snapshot of one cache level.
type CacheState struct {
	sets  []line // sealed; never written after the seal
	tick  uint64
	stats Stats
}

// snapshotState seals the cache and returns its state.
func (c *Cache) snapshotState() CacheState {
	c.cow = true
	c.last = nil
	return CacheState{sets: c.sets, tick: c.tick, stats: c.stats}
}

// restoreState points the cache at a sealed snapshot (copy-on-write).
func (c *Cache) restoreState(st CacheState) {
	if len(st.sets) != len(c.sets) {
		panic(fmt.Sprintf("cache %s: restore of %d-line snapshot into %d-line cache", c.cfg.Name, len(st.sets), len(c.sets)))
	}
	c.sets = st.sets
	c.cow = true
	c.tick = st.tick
	c.stats = st.stats
	c.last = nil
}

// own gives the TLB private backing storage and drops pointer hints.
func (t *TLB) own() {
	if !t.cow {
		return
	}
	fresh := make([]tlbEntry, len(t.sets))
	copy(fresh, t.sets)
	t.sets = fresh
	t.cow = false
	t.last = nil
	t.hints = [tlbHintSlots]*tlbEntry{}
}

// Shared reports whether the TLB still shares sealed snapshot storage.
func (t *TLB) Shared() bool { return t.cow }

// TLBState is a sealed snapshot of a TLB.
type TLBState struct {
	sets  []tlbEntry // sealed
	tick  uint64
	stats TLBStats
}

func (t *TLB) snapshotState() TLBState {
	t.cow = true
	t.last = nil
	t.hints = [tlbHintSlots]*tlbEntry{}
	return TLBState{sets: t.sets, tick: t.tick, stats: t.stats}
}

func (t *TLB) restoreState(st TLBState) {
	if len(st.sets) != len(t.sets) {
		panic(fmt.Sprintf("cache: restore of %d-entry TLB snapshot into %d-entry TLB", len(st.sets), len(t.sets)))
	}
	t.sets = st.sets
	t.cow = true
	t.tick = st.tick
	t.stats = st.stats
	t.last = nil
	t.hints = [tlbHintSlots]*tlbEntry{}
}

// own gives the victim buffer private backing storage.
func (v *victimBuffer) own() {
	if !v.cow {
		return
	}
	fresh := make([]victimEntry, len(v.entries))
	copy(fresh, v.entries)
	v.entries = fresh
	v.cow = false
}

// VictimState is a sealed snapshot of a victim buffer.
type VictimState struct {
	entries []victimEntry // sealed
	tick    uint64
	stats   VictimStats
}

func (v *victimBuffer) snapshotState() VictimState {
	v.cow = true
	return VictimState{entries: v.entries, tick: v.tick, stats: v.stats}
}

func (v *victimBuffer) restoreState(st VictimState) {
	if len(st.entries) != len(v.entries) {
		panic(fmt.Sprintf("cache: restore of %d-entry victim snapshot into %d-entry buffer", len(st.entries), len(v.entries)))
	}
	v.entries = st.entries
	v.cow = true
	v.tick = st.tick
	v.stats = st.stats
}

// HierarchyState is a sealed copy-on-write snapshot of one processor's
// private hierarchy: L1, L2, TLB, victim buffer, and (uniprocessor
// hierarchies only) the memory source's fetch counter. It is immutable
// once taken and may be restored into any number of shape-compatible
// hierarchies.
type HierarchyState struct {
	l1, l2     CacheState
	tlb        *TLBState
	victims    *VictimState
	memFetches int64
	hasMem     bool
}

// Snapshot seals the hierarchy's components and returns their state. It
// refuses while a miss-classification shadow is attached: the shadow
// holds unbounded per-access history that cheap sealing cannot capture.
// The hierarchy keeps running afterwards; its next mutation of a
// component copies that component's storage.
func (h *Hierarchy) Snapshot() (*HierarchyState, error) {
	if h.L1.classify != nil || h.L2.classify != nil {
		return nil, fmt.Errorf("cache: cannot snapshot with miss classification enabled")
	}
	h.memo = [fastSlots]fastMemo{}
	st := &HierarchyState{l1: h.L1.snapshotState(), l2: h.L2.snapshotState()}
	if h.TLB != nil {
		t := h.TLB.snapshotState()
		st.tlb = &t
	}
	if h.victims != nil {
		v := h.victims.snapshotState()
		st.victims = &v
	}
	if m, ok := h.Source.(*MemorySource); ok {
		st.hasMem = true
		st.memFetches = m.Fetches
	}
	return st, nil
}

// Restore points the hierarchy's components at a sealed snapshot
// (copy-on-write) and clears every pointer hint. The hierarchy must be
// shape-compatible with the snapshotted one: same cache geometries, same
// TLB and victim-buffer presence.
func (h *Hierarchy) Restore(st *HierarchyState) error {
	if h.L1.classify != nil || h.L2.classify != nil {
		return fmt.Errorf("cache: cannot restore with miss classification enabled")
	}
	if (h.TLB != nil) != (st.tlb != nil) {
		return fmt.Errorf("cache: snapshot TLB presence mismatch")
	}
	if (h.victims != nil) != (st.victims != nil) {
		return fmt.Errorf("cache: snapshot victim-buffer presence mismatch")
	}
	_, hasMem := h.Source.(*MemorySource)
	if hasMem != st.hasMem {
		return fmt.Errorf("cache: snapshot memory-source presence mismatch")
	}
	h.memo = [fastSlots]fastMemo{}
	h.L1.restoreState(st.l1)
	h.L2.restoreState(st.l2)
	if h.TLB != nil {
		h.TLB.restoreState(*st.tlb)
	}
	if h.victims != nil {
		h.victims.restoreState(*st.victims)
	}
	if st.hasMem {
		h.Source.(*MemorySource).Fetches = st.memFetches
	}
	return nil
}

// SharedComponents reports which of the hierarchy's components still
// share sealed snapshot storage (no write since the last snapshot or
// restore), as a subset of {"l1", "l2", "tlb", "victim"}. A sequential
// tail that never ran on this processor leaves every component shared —
// the per-fork dirty map the warm-start benchmarks report.
func (h *Hierarchy) SharedComponents() []string {
	var out []string
	if h.L1.cow {
		out = append(out, "l1")
	}
	if h.L2.cow {
		out = append(out, "l2")
	}
	if h.TLB != nil && h.TLB.cow {
		out = append(out, "tlb")
	}
	if h.victims != nil && h.victims.cow {
		out = append(out, "victim")
	}
	return out
}

// Occupancy summarizes a snapshot's resident state, read directly from
// the sealed arrays — inspection never copies or disturbs sharing.
type Occupancy struct {
	L1Valid    int `json:"l1_valid"`
	L1Modified int `json:"l1_modified"`
	L2Valid    int `json:"l2_valid"`
	L2Modified int `json:"l2_modified"`
	TLBValid   int `json:"tlb_valid"`
	Victim     int `json:"victim_valid"`
}

// Occupancy counts the snapshot's valid and Modified lines per level.
func (st *HierarchyState) Occupancy() Occupancy {
	var o Occupancy
	for i := range st.l1.sets {
		if s := st.l1.sets[i].state; s != Invalid {
			o.L1Valid++
			if s == Modified {
				o.L1Modified++
			}
		}
	}
	for i := range st.l2.sets {
		if s := st.l2.sets[i].state; s != Invalid {
			o.L2Valid++
			if s == Modified {
				o.L2Modified++
			}
		}
	}
	if st.tlb != nil {
		for i := range st.tlb.sets {
			if st.tlb.sets[i].valid {
				o.TLBValid++
			}
		}
	}
	if st.victims != nil {
		for i := range st.victims.entries {
			if st.victims.entries[i].state != Invalid {
				o.Victim++
			}
		}
	}
	return o
}

// ForEachL1Line calls f for every valid L1 line in the snapshot, in
// set-major order, without disturbing the seal.
func (st *HierarchyState) ForEachL1Line(f func(addr memsim.Addr, s State)) {
	for i := range st.l1.sets {
		if st.l1.sets[i].state != Invalid {
			f(st.l1.sets[i].tag, st.l1.sets[i].state)
		}
	}
}

// L1Stats returns the snapshot's L1 counters.
func (st *HierarchyState) L1Stats() Stats { return st.l1.stats }

// L2Stats returns the snapshot's L2 counters.
func (st *HierarchyState) L2Stats() Stats { return st.l2.stats }
