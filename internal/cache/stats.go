package cache

// Stats counts events at one cache level. All counters are monotonically
// increasing; Reset on the owning cache zeroes them.
type Stats struct {
	Accesses      int64 // demand lookups (reads + writes)
	Hits          int64 // demand lookups that found the line
	Misses        int64 // demand lookups that did not
	ReadMisses    int64
	WriteMisses   int64
	Fills         int64 // lines installed (demand + prefetch)
	PrefetchFills int64 // lines installed by prefetch only
	Evictions     int64 // valid lines displaced
	Writebacks    int64 // modified lines displaced (dirty victim)
	Invalidations int64 // lines removed by coherence actions
	Downgrades    int64 // M->S transitions forced by coherence
	Upgrades      int64 // S->M transitions on write hits

	// Miss classification (populated only when classification is enabled).
	Compulsory int64
	Capacity   int64
	Conflict   int64
}

// MissRate returns misses / accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Sub returns s - other, for measuring the events of a region bracketed
// by two snapshots.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		Accesses:      s.Accesses - other.Accesses,
		Hits:          s.Hits - other.Hits,
		Misses:        s.Misses - other.Misses,
		ReadMisses:    s.ReadMisses - other.ReadMisses,
		WriteMisses:   s.WriteMisses - other.WriteMisses,
		Fills:         s.Fills - other.Fills,
		PrefetchFills: s.PrefetchFills - other.PrefetchFills,
		Evictions:     s.Evictions - other.Evictions,
		Writebacks:    s.Writebacks - other.Writebacks,
		Invalidations: s.Invalidations - other.Invalidations,
		Downgrades:    s.Downgrades - other.Downgrades,
		Upgrades:      s.Upgrades - other.Upgrades,
		Compulsory:    s.Compulsory - other.Compulsory,
		Capacity:      s.Capacity - other.Capacity,
		Conflict:      s.Conflict - other.Conflict,
	}
}

// Emit reports every counter under a stable snake_case name, in field
// order, zeros included. This is the Stats half of the metrics Source
// contract (see internal/metrics); the owning cache provides ResetStats.
func (s Stats) Emit(emit func(name string, value int64)) {
	emit("accesses", s.Accesses)
	emit("hits", s.Hits)
	emit("misses", s.Misses)
	emit("read_misses", s.ReadMisses)
	emit("write_misses", s.WriteMisses)
	emit("fills", s.Fills)
	emit("prefetch_fills", s.PrefetchFills)
	emit("evictions", s.Evictions)
	emit("writebacks", s.Writebacks)
	emit("invalidations", s.Invalidations)
	emit("downgrades", s.Downgrades)
	emit("upgrades", s.Upgrades)
	emit("compulsory", s.Compulsory)
	emit("capacity", s.Capacity)
	emit("conflict", s.Conflict)
}

// Add accumulates other into s, for aggregating across processors.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.ReadMisses += other.ReadMisses
	s.WriteMisses += other.WriteMisses
	s.Fills += other.Fills
	s.PrefetchFills += other.PrefetchFills
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
	s.Invalidations += other.Invalidations
	s.Downgrades += other.Downgrades
	s.Upgrades += other.Upgrades
	s.Compulsory += other.Compulsory
	s.Capacity += other.Capacity
	s.Conflict += other.Conflict
}
