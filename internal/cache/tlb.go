package cache

import (
	"fmt"

	"repro/internal/memsim"
)

// TLBConfig describes a data TLB. A zero value (Entries == 0) disables
// translation modelling.
type TLBConfig struct {
	Entries     int   // total entries (power of two)
	Assoc       int   // associativity; == Entries means fully associative
	PageSize    int   // bytes per page (power of two)
	MissLatency int64 // page-walk / software-refill cost in cycles
}

// Enabled reports whether the configuration models a TLB.
func (c TLBConfig) Enabled() bool { return c.Entries > 0 }

// Validate checks the configuration (only when enabled).
func (c TLBConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	switch {
	case !memsim.IsPow2(c.Entries):
		return fmt.Errorf("tlb: entries %d not a power of two", c.Entries)
	case !memsim.IsPow2(c.Assoc) || c.Assoc > c.Entries:
		return fmt.Errorf("tlb: associativity %d invalid for %d entries", c.Assoc, c.Entries)
	case !memsim.IsPow2(c.PageSize):
		return fmt.Errorf("tlb: page size %d not a power of two", c.PageSize)
	case c.MissLatency < 0:
		return fmt.Errorf("tlb: negative miss latency")
	}
	return nil
}

// TLBStats counts translation events.
type TLBStats struct {
	Accesses int64
	Misses   int64
}

// MissRate returns misses/accesses (0 when untouched).
func (s TLBStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// tlbEntry is one translation slot.
type tlbEntry struct {
	page  memsim.Addr
	valid bool
	lru   uint64
}

// TLB is a set-associative, LRU data TLB. Translations are presence-only;
// the simulator has no distinct virtual and physical spaces, so the TLB
// models only the *cost* of translation locality, which is what the
// workloads feel.
type TLB struct {
	cfg      TLBConfig
	sets     []tlbEntry
	tick     uint64
	stats    TLBStats
	setMask  memsim.Addr
	setShift uint
}

// NewTLB builds a TLB; it panics on invalid configuration (configs are
// validated with machine configs first) and returns nil for a disabled
// one.
func NewTLB(cfg TLBConfig) *TLB {
	if !cfg.Enabled() {
		return nil
	}
	if err := cfg.Validate(); err != nil {
		panic("cache: " + err.Error())
	}
	t := &TLB{
		cfg:  cfg,
		sets: make([]tlbEntry, cfg.Entries),
	}
	numSets := cfg.Entries / cfg.Assoc
	t.setMask = memsim.Addr(numSets - 1)
	for s := cfg.PageSize; s > 1; s >>= 1 {
		t.setShift++
	}
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Stats returns a copy of the counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// Reset empties the TLB and zeroes its statistics.
func (t *TLB) Reset() {
	for i := range t.sets {
		t.sets[i] = tlbEntry{}
	}
	t.tick = 0
	t.stats = TLBStats{}
}

// ResetStats zeroes counters, keeping contents.
func (t *TLB) ResetStats() { t.stats = TLBStats{} }

// EmitMetrics reports the TLB's counters (metrics Source contract).
func (t *TLB) EmitMetrics(emit func(name string, value int64)) {
	emit("accesses", t.stats.Accesses)
	emit("misses", t.stats.Misses)
}

// Access translates addr, returning the cycle cost (0 on a hit, the miss
// latency on a refill). Misses install the page, LRU within the set.
func (t *TLB) Access(addr memsim.Addr) int64 {
	t.stats.Accesses++
	page := addr >> t.setShift
	setIdx := int(page & t.setMask)
	set := t.sets[setIdx*t.cfg.Assoc : (setIdx+1)*t.cfg.Assoc]
	t.tick++
	for i := range set {
		if set[i].valid && set[i].page == page {
			set[i].lru = t.tick
			return 0
		}
	}
	t.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = tlbEntry{page: page, valid: true, lru: t.tick}
	return t.cfg.MissLatency
}

// Reach returns the bytes of address space the TLB can map.
func (t *TLB) Reach() int { return t.cfg.Entries * t.cfg.PageSize }
