package cache

import (
	"fmt"

	"repro/internal/memsim"
)

// TLBConfig describes a data TLB. A zero value (Entries == 0) disables
// translation modelling.
type TLBConfig struct {
	Entries     int   // total entries (power of two)
	Assoc       int   // associativity; == Entries means fully associative
	PageSize    int   // bytes per page (power of two)
	MissLatency int64 // page-walk / software-refill cost in cycles
}

// Enabled reports whether the configuration models a TLB.
func (c TLBConfig) Enabled() bool { return c.Entries > 0 }

// Validate checks the configuration (only when enabled).
func (c TLBConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	switch {
	case !memsim.IsPow2(c.Entries):
		return fmt.Errorf("tlb: entries %d not a power of two", c.Entries)
	case !memsim.IsPow2(c.Assoc) || c.Assoc > c.Entries:
		return fmt.Errorf("tlb: associativity %d invalid for %d entries", c.Assoc, c.Entries)
	case !memsim.IsPow2(c.PageSize):
		return fmt.Errorf("tlb: page size %d not a power of two", c.PageSize)
	case c.MissLatency < 0:
		return fmt.Errorf("tlb: negative miss latency")
	}
	return nil
}

// TLBStats counts translation events.
type TLBStats struct {
	Accesses int64
	Misses   int64
}

// MissRate returns misses/accesses (0 when untouched).
func (s TLBStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// tlbEntry is one translation slot.
type tlbEntry struct {
	page  memsim.Addr
	valid bool
	lru   uint64
}

// TLB is a set-associative, LRU data TLB. Translations are presence-only;
// the simulator has no distinct virtual and physical spaces, so the TLB
// models only the *cost* of translation locality, which is what the
// workloads feel.
type TLB struct {
	cfg      TLBConfig
	sets     []tlbEntry
	tick     uint64
	stats    TLBStats
	setMask  memsim.Addr
	setShift uint

	// last points at the slot of the most recent translation (hit or
	// refill); the hierarchy's memoizer reuses it to avoid a second scan.
	last *tlbEntry

	// hints short-circuits the set scan: a hash-indexed table of
	// candidate slots for recently translated pages. A page lives in at
	// most one slot, so a verified hint (valid, matching page) yields
	// exactly the entry the scan would find — pure search-order
	// optimization, observably identical, and worth a lot on the
	// R10000's fully-associative TLB where the scan is all 64 entries.
	hints [tlbHintSlots]*tlbEntry

	// cow marks sets as sealed to a snapshot: the next access copies it
	// into private storage first (see snapshot.go).
	cow bool
}

// tlbHintSlots is the translation hint table size (power of two).
const tlbHintSlots = 128

// tlbHint maps a page number to its hint slot (Fibonacci hashing, so
// lockstep page streams don't collide persistently).
func tlbHint(page memsim.Addr) int {
	return int((uint64(page) * 0x9E3779B97F4A7C15) >> 57)
}

// NewTLB builds a TLB; it panics on invalid configuration (configs are
// validated with machine configs first) and returns nil for a disabled
// one.
func NewTLB(cfg TLBConfig) *TLB {
	if !cfg.Enabled() {
		return nil
	}
	if err := cfg.Validate(); err != nil {
		panic("cache: " + err.Error())
	}
	t := &TLB{
		cfg:  cfg,
		sets: make([]tlbEntry, cfg.Entries),
	}
	numSets := cfg.Entries / cfg.Assoc
	t.setMask = memsim.Addr(numSets - 1)
	for s := cfg.PageSize; s > 1; s >>= 1 {
		t.setShift++
	}
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Stats returns a copy of the counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// Reset empties the TLB and zeroes its statistics.
func (t *TLB) Reset() {
	if t.cow {
		// Borrowed snapshot storage: allocate fresh zeroed entries
		// rather than copy-then-zero; the seal stays untouched.
		t.sets = make([]tlbEntry, len(t.sets))
		t.cow = false
	} else {
		for i := range t.sets {
			t.sets[i] = tlbEntry{}
		}
	}
	t.tick = 0
	t.stats = TLBStats{}
	t.last = nil
	t.hints = [tlbHintSlots]*tlbEntry{}
}

// ResetStats zeroes counters, keeping contents.
func (t *TLB) ResetStats() { t.stats = TLBStats{} }

// EmitMetrics reports the TLB's counters (metrics Source contract).
func (t *TLB) EmitMetrics(emit func(name string, value int64)) {
	emit("accesses", t.stats.Accesses)
	emit("misses", t.stats.Misses)
}

// Access translates addr, returning the cycle cost (0 on a hit, the miss
// latency on a refill). Misses install the page, LRU within the set.
func (t *TLB) Access(addr memsim.Addr) int64 {
	t.own()
	t.stats.Accesses++
	page := addr >> t.setShift
	t.tick++
	hint := &t.hints[tlbHint(page)]
	if e := *hint; e != nil && e.valid && e.page == page {
		e.lru = t.tick
		t.last = e
		return 0
	}
	setIdx := int(page & t.setMask)
	set := t.sets[setIdx*t.cfg.Assoc : (setIdx+1)*t.cfg.Assoc]
	for i := range set {
		if set[i].valid && set[i].page == page {
			set[i].lru = t.tick
			t.last = &set[i]
			*hint = &set[i]
			return 0
		}
	}
	t.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = tlbEntry{page: page, valid: true, lru: t.tick}
	t.last = &set[victim]
	*hint = &set[victim]
	return t.cfg.MissLatency
}

// entryPtr returns a pointer to the slot holding addr's translation, or
// nil on a TLB miss. Pointers stay valid for the TLB's lifetime; the
// hierarchy's fast path memoizes recently translated pages' entries so a
// same-page access can re-touch one — after re-verifying its page and
// validity — without the set scan.
func (t *TLB) entryPtr(addr memsim.Addr) *tlbEntry {
	t.own()
	page := addr >> t.setShift
	setIdx := int(page & t.setMask)
	set := t.sets[setIdx*t.cfg.Assoc : (setIdx+1)*t.cfg.Assoc]
	for i := range set {
		if set[i].valid && set[i].page == page {
			return &set[i]
		}
	}
	return nil
}

// touchFast repeats a translation hit on a memoized entry, with exactly
// the bookkeeping Access's hit path performs (access count, LRU tick) and
// none of the set scan. The caller guarantees the entry is still the valid
// translation of the accessed page by checking it immediately beforehand.
func (t *TLB) touchFast(e *tlbEntry) {
	if t.cow {
		panic("cache: TLB touchFast through a pointer into sealed storage")
	}
	t.stats.Accesses++
	t.tick++
	e.lru = t.tick
}

// touchRun retires n further translation hits on a memoized entry in one
// step — the aggregate bookkeeping of n touchFast calls (n accesses, n
// ticks, entry left at the newest tick). As with Cache.touchRun, the
// intermediate LRU positions are unobservable between coalesced hits.
func (t *TLB) touchRun(e *tlbEntry, n int64) {
	if t.cow {
		panic("cache: TLB touchRun through a pointer into sealed storage")
	}
	t.stats.Accesses += n
	t.tick += uint64(n)
	e.lru = t.tick
}

// Reach returns the bytes of address space the TLB can map.
func (t *TLB) Reach() int { return t.cfg.Entries * t.cfg.PageSize }
