package cache

import "repro/internal/memsim"

// VictimStats counts victim-buffer events.
type VictimStats struct {
	Hits    int64 // L1 misses satisfied by the buffer
	Inserts int64 // L1 evictions captured
}

// victimBuffer is a small fully-associative buffer holding lines recently
// evicted from L1 (Jouppi's victim cache). It exists to answer a question
// the paper raises implicitly: restructuring wins largely by removing
// conflict misses — would a small hardware victim cache have achieved the
// same? (The ablation's answer: it helps the L1 thrashing but cannot
// touch L2 conflicts or gather locality.)
//
// Entries are redundant with L2 (inclusion is maintained at L2), so
// silently dropping one loses no data; dirtiness was propagated into L2
// when the line left L1.
type victimBuffer struct {
	entries []victimEntry
	lat     int64
	tick    uint64
	stats   VictimStats

	// cow marks entries as sealed to a snapshot: mutators copy it into
	// private storage first (see snapshot.go).
	cow bool
}

type victimEntry struct {
	addr  memsim.Addr
	state State
	lru   uint64
}

// newVictimBuffer returns nil for entries <= 0 (disabled).
func newVictimBuffer(entries int, lat int64) *victimBuffer {
	if entries <= 0 {
		return nil
	}
	return &victimBuffer{entries: make([]victimEntry, entries), lat: lat}
}

// take removes and returns the entry for addr, if present.
func (v *victimBuffer) take(addr memsim.Addr) (State, bool) {
	v.own()
	for i := range v.entries {
		if v.entries[i].state != Invalid && v.entries[i].addr == addr {
			st := v.entries[i].state
			v.entries[i] = victimEntry{}
			v.stats.Hits++
			return st, true
		}
	}
	return Invalid, false
}

// insert records an evicted L1 line, displacing the LRU entry.
func (v *victimBuffer) insert(addr memsim.Addr, st State) {
	v.own()
	v.tick++
	victim := 0
	for i := range v.entries {
		if v.entries[i].state == Invalid {
			victim = i
			break
		}
		if v.entries[i].lru < v.entries[victim].lru {
			victim = i
		}
	}
	v.entries[victim] = victimEntry{addr: addr, state: st, lru: v.tick}
	v.stats.Inserts++
}

// invalidate drops any entry covered by the L2-line range [addr,
// addr+span) (coherence or back-invalidation).
func (v *victimBuffer) invalidate(addr memsim.Addr, span int) {
	v.own()
	for i := range v.entries {
		e := &v.entries[i]
		if e.state != Invalid && e.addr >= addr && e.addr < addr+memsim.Addr(span) {
			*e = victimEntry{}
		}
	}
}

// downgrade demotes covered Modified entries to Shared.
func (v *victimBuffer) downgrade(addr memsim.Addr, span int) (hadModified bool) {
	v.own()
	for i := range v.entries {
		e := &v.entries[i]
		if e.state == Modified && e.addr >= addr && e.addr < addr+memsim.Addr(span) {
			e.state = Shared
			hadModified = true
		}
	}
	return hadModified
}

// Reset clears entries and statistics.
func (v *victimBuffer) Reset() {
	if v.cow {
		v.entries = make([]victimEntry, len(v.entries))
		v.cow = false
	} else {
		for i := range v.entries {
			v.entries[i] = victimEntry{}
		}
	}
	v.tick = 0
	v.stats = VictimStats{}
}

// ResetStats zeroes counters, keeping buffered lines.
func (v *victimBuffer) ResetStats() { v.stats = VictimStats{} }

// EmitMetrics reports the buffer's counters (metrics Source contract).
func (v *victimBuffer) EmitMetrics(emit func(name string, value int64)) {
	emit("hits", v.stats.Hits)
	emit("inserts", v.stats.Inserts)
}
