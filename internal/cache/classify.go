package cache

import (
	"container/list"

	"repro/internal/memsim"
)

// missKind is the classical three-way miss taxonomy.
type missKind uint8

const (
	missCompulsory missKind = iota // first reference to the line ever
	missCapacity                   // would miss even in a fully-associative cache
	missConflict                   // present in the fully-associative shadow, so
	// only the set mapping caused the miss
)

// classifier implements Hill's miss classification: alongside the real
// cache it maintains (a) the set of all lines ever referenced and (b) a
// fully-associative LRU cache with the same total line count. A miss that
// the fully-associative cache would have hit is a conflict miss; a miss on
// a never-seen line is compulsory; the rest are capacity misses.
type classifier struct {
	capacityLines int
	seen          map[memsim.Addr]struct{}
	lru           *list.List // of memsim.Addr, front = most recent
	inLRU         map[memsim.Addr]*list.Element
}

func newClassifier(capacityLines int) *classifier {
	return &classifier{
		capacityLines: capacityLines,
		seen:          make(map[memsim.Addr]struct{}),
		lru:           list.New(),
		inLRU:         make(map[memsim.Addr]*list.Element),
	}
}

func (cl *classifier) reset() {
	cl.seen = make(map[memsim.Addr]struct{})
	cl.lru = list.New()
	cl.inLRU = make(map[memsim.Addr]*list.Element)
}

// touch records a reference that hit in the real cache; the shadow must see
// the same reference stream to stay meaningful.
func (cl *classifier) touch(lineAddr memsim.Addr) {
	if e, ok := cl.inLRU[lineAddr]; ok {
		cl.lru.MoveToFront(e)
		return
	}
	cl.insert(lineAddr)
}

// classifyMiss records a reference that missed in the real cache and
// returns its classification.
func (cl *classifier) classifyMiss(lineAddr memsim.Addr) missKind {
	kind := missCapacity
	if _, ok := cl.seen[lineAddr]; !ok {
		kind = missCompulsory
		cl.seen[lineAddr] = struct{}{}
	} else if e, ok := cl.inLRU[lineAddr]; ok {
		kind = missConflict
		cl.lru.MoveToFront(e)
		return kind
	}
	cl.insert(lineAddr)
	return kind
}

func (cl *classifier) insert(lineAddr memsim.Addr) {
	cl.seen[lineAddr] = struct{}{}
	e := cl.lru.PushFront(lineAddr)
	cl.inLRU[lineAddr] = e
	if cl.lru.Len() > cl.capacityLines {
		back := cl.lru.Back()
		cl.lru.Remove(back)
		delete(cl.inLRU, back.Value.(memsim.Addr))
	}
}
