package cache

import (
	"fmt"

	"repro/internal/memsim"
)

// line is one cache line's bookkeeping. The tag stores the full line
// address (rather than the address with set bits stripped) because the
// simulator trades a few bytes per line for simpler invariants.
type line struct {
	tag   memsim.Addr // line-aligned address; meaningful only when state != Invalid
	state State
	lru   uint64 // larger = more recently used
}

// Cache is a single set-associative, write-back, write-allocate cache level
// with LRU replacement. It models presence and coherence state only; data
// values live in memsim arrays.
type Cache struct {
	cfg      Config
	sets     []line // numSets * assoc, set-major
	tick     uint64
	stats    Stats
	classify *classifier // nil unless EnableClassification was called

	setMask  memsim.Addr
	setShift uint
	assoc    int

	// last points at the slot of the most recent demand hit or fill — a
	// hint for the hierarchy's memoizer, which would otherwise repeat the
	// set search the access just performed. Like all fast-path hints it
	// is verified (tag, state) before use.
	last *line

	// cow marks sets as sealed to a snapshot: the next lookup or fill
	// copies it into private storage first (see snapshot.go).
	cow bool
}

// New builds a cache from cfg. It panics on invalid configuration; machine
// presets are validated at construction time, so a bad config is a
// programming error.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic("cache: " + err.Error())
	}
	c := &Cache{
		cfg:   cfg,
		sets:  make([]line, cfg.NumSets()*cfg.Assoc),
		assoc: cfg.Assoc,
	}
	c.setMask = memsim.Addr(cfg.NumSets() - 1)
	for s := cfg.LineSize; s > 1; s >>= 1 {
		c.setShift++
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// EnableClassification attaches a fully-associative shadow cache of equal
// capacity so that every demand miss is classified as compulsory, capacity,
// or conflict (Hill's scheme). It costs memory proportional to the workload
// footprint and is therefore opt-in.
func (c *Cache) EnableClassification() {
	c.classify = newClassifier(c.cfg.NumLines())
}

// ResetStats zeroes the event counters without disturbing cache contents.
// It is used after warm-up phases (e.g. the simulated prior parallel
// section) so that reported statistics cover only the measured region.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// EmitMetrics reports the cache's counters (metrics Source contract).
func (c *Cache) EmitMetrics(emit func(name string, value int64)) { c.stats.Emit(emit) }

// Reset empties the cache and zeroes its statistics. The classification
// shadow, if any, is reset too.
func (c *Cache) Reset() {
	if c.cow {
		// Borrowed snapshot storage: allocating fresh zeroed lines is
		// cheaper than copy-then-zero and leaves the seal untouched.
		c.sets = make([]line, len(c.sets))
		c.cow = false
	} else {
		for i := range c.sets {
			c.sets[i] = line{}
		}
	}
	c.tick = 0
	c.stats = Stats{}
	c.last = nil
	if c.classify != nil {
		c.classify.reset()
	}
}

// setFor returns the slice of ways for the set containing lineAddr.
func (c *Cache) setFor(lineAddr memsim.Addr) []line {
	idx := int((lineAddr >> c.setShift) & c.setMask)
	return c.sets[idx*c.assoc : (idx+1)*c.assoc]
}

// find returns the way index of lineAddr within its set, or -1.
func (c *Cache) find(set []line, lineAddr memsim.Addr) int {
	for w := range set {
		if set[w].state != Invalid && set[w].tag == lineAddr {
			return w
		}
	}
	return -1
}

// lookup returns a pointer to the line's bookkeeping slot, or nil if the
// line is absent, consulting the last-hit hint before searching the set.
// The hint is verified (tag and state) so a stale one merely falls
// through to the scan; a present line occupies exactly one slot, so the
// hint and the scan can only agree.
func (c *Cache) lookup(lineAddr memsim.Addr) *line {
	c.own()
	if ln := c.last; ln != nil && ln.state != Invalid && ln.tag == lineAddr {
		return ln
	}
	set := c.setFor(lineAddr)
	if w := c.find(set, lineAddr); w >= 0 {
		c.last = &set[w]
		return &set[w]
	}
	return nil
}

// linePtr returns a pointer to the line's bookkeeping slot, or nil if the
// line is absent. The pointer stays valid for the cache's lifetime (the
// backing array is allocated once in New and never moves); it dangles
// logically — not in memory — once the line is evicted, so holders must
// re-verify tag and state before trusting it. The hierarchy's same-line
// fast path memoizes it to re-touch recent lines without a set search.
func (c *Cache) linePtr(lineAddr memsim.Addr) *line {
	return c.lookup(lineAddr)
}

// touchFast repeats a demand hit on a line already known to be present
// (via a linePtr memo), performing exactly the bookkeeping Touch's hit
// path performs — statistics, the LRU tick, the classification shadow —
// without the set search. Callers guarantee ln points at the valid slot
// for its line; the hierarchy's fast path establishes that by checking
// the slot's current tag and state immediately before the call.
func (c *Cache) touchFast(ln *line) {
	if c.cow {
		panic("cache: touchFast through a pointer into sealed storage")
	}
	c.stats.Accesses++
	c.stats.Hits++
	c.tick++
	ln.lru = c.tick
	if c.classify != nil {
		c.classify.touch(ln.tag)
	}
}

// touchRun retires n further demand hits on a line in one step, with the
// exact aggregate bookkeeping of n touchFast calls: n accesses, n hits, n
// LRU ticks, and the line left at the newest tick. Intermediate LRU
// positions are unobservable — no lookup happens between the coalesced
// hits — so only the final state matters, and it is identical. Callers
// must not use it while classification is enabled: the shadow observes
// per-access touch order, which the hierarchy's legality predicate
// (CoalesceActive) accounts for.
func (c *Cache) touchRun(ln *line, n int64) {
	if c.cow {
		panic("cache: touchRun through a pointer into sealed storage")
	}
	c.stats.Accesses += n
	c.stats.Hits += n
	c.tick += uint64(n)
	ln.lru = c.tick
}

// Probe reports the line's state without touching LRU order or statistics.
// The address must be line-aligned.
func (c *Cache) Probe(lineAddr memsim.Addr) State {
	if ln := c.lookup(lineAddr); ln != nil {
		return ln.state
	}
	return Invalid
}

// Touch performs a demand lookup. On a hit it updates LRU order; on a write
// hit to a Shared line it does NOT upgrade the state (the hierarchy must
// obtain write permission from the coherence layer first, then call
// SetState). Statistics are updated. The address must be line-aligned.
func (c *Cache) Touch(lineAddr memsim.Addr, write bool) (hit bool, st State) {
	c.stats.Accesses++
	ln := c.lookup(lineAddr)
	if ln == nil {
		c.stats.Misses++
		if write {
			c.stats.WriteMisses++
		} else {
			c.stats.ReadMisses++
		}
		if c.classify != nil {
			c.classifyMiss(lineAddr)
		}
		return false, Invalid
	}
	c.stats.Hits++
	c.tick++
	ln.lru = c.tick
	c.last = ln
	if c.classify != nil {
		c.classify.touch(lineAddr)
	}
	return true, ln.state
}

// classifyMiss records a demand miss in the shadow structures and bumps the
// corresponding classification counter.
func (c *Cache) classifyMiss(lineAddr memsim.Addr) {
	switch c.classify.classifyMiss(lineAddr) {
	case missCompulsory:
		c.stats.Compulsory++
	case missCapacity:
		c.stats.Capacity++
	case missConflict:
		c.stats.Conflict++
	}
}

// Victim describes a line displaced by a Fill.
type Victim struct {
	Addr     memsim.Addr
	Modified bool // the victim was dirty and must be written back
	Valid    bool // false when an Invalid way was used (no displacement)
}

// Fill installs lineAddr in state st, displacing the LRU way if the set is
// full. prefetch marks the fill as prefetch-initiated for statistics.
// It panics if the line is already present (fills must follow misses) or if
// st is Invalid.
func (c *Cache) Fill(lineAddr memsim.Addr, st State, prefetch bool) Victim {
	if st == Invalid {
		panic("cache: Fill with Invalid state")
	}
	c.own()
	set := c.setFor(lineAddr)
	if c.find(set, lineAddr) >= 0 {
		panic(fmt.Sprintf("cache %s: Fill(%s) but line already present", c.cfg.Name, lineAddr))
	}
	// Choose a victim: an Invalid way if one exists, else the LRU way.
	victim := 0
	for w := range set {
		if set[w].state == Invalid {
			victim = w
			break
		}
		if set[w].lru < set[victim].lru {
			victim = w
		}
	}
	var v Victim
	if set[victim].state != Invalid {
		v = Victim{
			Addr:     set[victim].tag,
			Modified: set[victim].state == Modified,
			Valid:    true,
		}
		c.stats.Evictions++
		if v.Modified {
			c.stats.Writebacks++
		}
	}
	c.tick++
	set[victim] = line{tag: lineAddr, state: st, lru: c.tick}
	c.last = &set[victim]
	c.stats.Fills++
	if prefetch {
		c.stats.PrefetchFills++
	}
	return v
}

// SetState changes the state of a present line (e.g. S->M after a coherence
// upgrade). It reports whether the line was present. Upgrades are counted.
func (c *Cache) SetState(lineAddr memsim.Addr, st State) bool {
	ln := c.lookup(lineAddr)
	if ln == nil {
		return false
	}
	if ln.state == Shared && st == Modified {
		c.stats.Upgrades++
	}
	ln.state = st
	return true
}

// Invalidate removes the line if present, returning its prior state.
// Coherence-initiated removals are counted as invalidations.
func (c *Cache) Invalidate(lineAddr memsim.Addr) (prior State) {
	ln := c.lookup(lineAddr)
	if ln == nil {
		return Invalid
	}
	prior = ln.state
	*ln = line{}
	c.stats.Invalidations++
	return prior
}

// Downgrade forces a Modified line to Shared (a remote reader snooped it).
// It reports the prior state; Invalid means the line was absent.
func (c *Cache) Downgrade(lineAddr memsim.Addr) (prior State) {
	ln := c.lookup(lineAddr)
	if ln == nil {
		return Invalid
	}
	prior = ln.state
	if prior == Modified {
		ln.state = Shared
		c.stats.Downgrades++
	}
	return prior
}

// ValidLines returns the number of lines currently present, for tests and
// occupancy reports.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].state != Invalid {
			n++
		}
	}
	return n
}

// ForEachLine calls f for every valid line. Iteration order is set-major
// and deterministic.
func (c *Cache) ForEachLine(f func(addr memsim.Addr, st State)) {
	for i := range c.sets {
		if c.sets[i].state != Invalid {
			f(c.sets[i].tag, c.sets[i].state)
		}
	}
}
