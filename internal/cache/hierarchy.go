package cache

import (
	"fmt"

	"repro/internal/memsim"
)

// LineSource supplies lines that miss the entire private hierarchy and
// arbitrates write permission. The uniprocessor implementation is
// MemorySource; the multiprocessor implementation is the snooping bus in
// internal/coherence.
type LineSource interface {
	// FetchLine obtains the L2-line at lineAddr. It returns the latency of
	// the fetch beyond the hierarchy's own lookup costs and the coherence
	// state the line should be installed in (Modified for writes, Shared
	// or Modified for reads depending on remote copies).
	FetchLine(lineAddr memsim.Addr, write bool) (lat int64, st State)
	// UpgradeLine obtains write permission for a line held Shared,
	// invalidating remote copies. It returns the latency of doing so.
	UpgradeLine(lineAddr memsim.Addr) int64
	// WritebackLine is notified when a Modified line leaves the hierarchy.
	// Writebacks are buffered on the paper's machines, so no latency is
	// charged; the notification exists for statistics and memory-state
	// bookkeeping.
	WritebackLine(lineAddr memsim.Addr)
}

// MemorySource is the uniprocessor LineSource: every fetch costs the fixed
// memory latency.
type MemorySource struct {
	Latency int64
	Fetches int64 // number of memory fetches served
}

// FetchLine implements LineSource.
func (m *MemorySource) FetchLine(_ memsim.Addr, write bool) (int64, State) {
	m.Fetches++
	if write {
		return m.Latency, Modified
	}
	return m.Latency, Shared
}

// UpgradeLine implements LineSource; with no other caches an upgrade is free.
func (m *MemorySource) UpgradeLine(memsim.Addr) int64 { return 0 }

// WritebackLine implements LineSource.
func (m *MemorySource) WritebackLine(memsim.Addr) {}

// Reset zeroes the fetch counter (memory has no cached contents to drop).
func (m *MemorySource) Reset() { m.Fetches = 0 }

// ResetStats zeroes the fetch counter.
func (m *MemorySource) ResetStats() { m.Fetches = 0 }

// EmitMetrics reports the fetch counter (metrics Source contract).
func (m *MemorySource) EmitMetrics(emit func(name string, value int64)) {
	emit("fetches", m.Fetches)
}

// Level identifies which level of the memory system satisfied an access.
type Level uint8

const (
	// LevelL1 means the access hit in the first-level cache.
	LevelL1 Level = 1
	// LevelL2 means the access missed L1 and hit L2.
	LevelL2 Level = 2
	// LevelMem means the access missed the private hierarchy entirely.
	LevelMem Level = 3
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "mem"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Result describes one access: its total latency, the level that satisfied
// it, and the portion of the latency beyond the L1 hit cost (the part a
// non-blocking cache can overlap with other outstanding misses).
type Result struct {
	Cycles      int64
	Level       Level
	MissPenalty int64
}

// Hierarchy is one processor's private L1+L2 pair in front of a LineSource.
// L2 includes L1: every L1 line's data is also present in L2, and L2
// evictions back-invalidate the corresponding L1 lines. A Modified L1 line
// implies the enclosing L2 line is Modified.
type Hierarchy struct {
	L1, L2 *Cache
	Source LineSource

	// StoreBuffered models a write buffer: stores perform their full
	// state transitions (allocation, coherence upgrades, statistics) but
	// charge only the L1 issue latency to the executing instruction
	// stream — both paper machines retire stores through store buffers,
	// so store misses and invalidation round-trips are off the critical
	// path. Loads are unaffected.
	StoreBuffered bool

	// TLB, when non-nil, models address translation: every demand access
	// consults it, and a miss serially adds the page-walk latency.
	// Helpers warm the TLB as a side effect of their accesses, exactly as
	// they warm the caches.
	TLB *TLB

	// FastPath enables the same-line short-circuit: a demand access that
	// lands in a recently-accessed L1 line skips the TLB scan, set
	// search, and multi-line span logic, and re-touches the memoized line
	// directly. The shortcut is observably identical to the full path —
	// same latency, same counters, same LRU ticks — because it only ever
	// applies when the full path would have been a pure L1 (and TLB) hit;
	// see DESIGN.md §4 for the invariants. Off by default so
	// direct-construction tests exercise the reference path; machines
	// switch it on for EngineFast configurations.
	FastPath bool

	// Coalesce enables run coalescing: AccessRun may retire the tail of a
	// line-resident access run with analytic stat/latency deltas instead
	// of walking the state machine per access, and VerifyRun/RetireRun
	// expose the same legality predicate to the compiled runner's window
	// coalescing. Like FastPath, the retired bookkeeping is observably
	// identical to the per-access path — it only ever applies to accesses
	// the full path would have served as pure L1+TLB hits; see DESIGN.md
	// §4.2 for the invariants. Off by default; machines switch it on for
	// EngineFast configurations unless the Coalesce knob says otherwise.
	Coalesce bool

	victims *victimBuffer

	// memo is the same-line hint table: a small direct-mapped cache over
	// recent single-line accesses, indexed by L1 line address. Entries
	// are *hints*, not authority — every use re-verifies the pointed-at
	// L1 slot (tag and state) and TLB slot (page and validity) against
	// their current contents, so an entry staled by an eviction,
	// invalidation, downgrade, or TLB refill simply fails verification
	// and falls back to the full path. No event in the hierarchy needs to
	// clear hints.
	memo [fastSlots]fastMemo
}

// fastSlots is the hint table size: a power of two, sized to cover the
// distinct lines live inside one loop iteration — a handful of array
// streams plus index tables, and for gather loops the L1-resident slice
// of the gathered array — with room for churn.
const fastSlots = 256

// fastIdx maps a line address to its hint slot. A multiplicative hash
// (Fibonacci hashing) rather than direct line-bit indexing: the live
// lines of two lockstep array streams advance together, so any direct
// congruence collision between them would persist for the whole loop and
// thrash both streams' hints; hashing makes collisions incidental.
func fastIdx(line memsim.Addr) int {
	return int((uint64(line) * 0x9E3779B97F4A7C15) >> 56)
}

// fastMemo is one hint: the claim that L1 line `line` currently occupies
// the slot *ln, and (when a TLB is modelled) that page `page` currently
// occupies the slot *tlb. The pointers reach into backing arrays that are
// allocated once and never move, so a stale hint dangles only logically;
// verification against the slots' current tags makes using one safe.
type fastMemo struct {
	ln   *line
	tlb  *tlbEntry
	line memsim.Addr
	page memsim.Addr
}

// EnableVictimBuffer attaches a fully-associative victim cache of the
// given entry count beside L1; victim hits cost the L1 latency plus lat.
func (h *Hierarchy) EnableVictimBuffer(entries int, lat int64) {
	h.victims = newVictimBuffer(entries, lat)
}

// VictimStats returns the victim buffer's counters (zero when disabled).
func (h *Hierarchy) VictimStats() VictimStats {
	if h.victims == nil {
		return VictimStats{}
	}
	return h.victims.stats
}

// NewHierarchy builds a hierarchy over the given source. The L2 line size
// must be a multiple of the L1 line size (true of both paper machines).
func NewHierarchy(l1, l2 Config, src LineSource) *Hierarchy {
	if l2.LineSize%l1.LineSize != 0 {
		panic(fmt.Sprintf("cache: L2 line size %d not a multiple of L1 line size %d", l2.LineSize, l1.LineSize))
	}
	if l2.Size < l1.Size {
		panic(fmt.Sprintf("cache: L2 size %d smaller than L1 size %d; inclusion impossible", l2.Size, l1.Size))
	}
	return &Hierarchy{L1: New(l1), L2: New(l2), Source: src}
}

// StatSource is one stat-bearing component of a hierarchy. Reset drops
// contents and counters; ResetStats zeroes counters only; EmitMetrics
// reports every counter under a component-local name (the metrics Source
// contract — see internal/metrics).
type StatSource interface {
	Reset()
	ResetStats()
	EmitMetrics(emit func(name string, value int64))
}

// NamedSource is a StatSource with the hierarchy-local name it is known by.
type NamedSource struct {
	Name string
	StatSource
}

// StatSources enumerates every stat-bearing component of the hierarchy, in
// a fixed order. Reset, ResetStats, and metrics registration all walk this
// one list, so a component added here can never be zeroed by one reset
// path but leak through another (the victim-buffer bug this replaces: the
// buffer was reset by Reset but skipped by ResetStats, so its counters
// bled across the warm-up/measured-region boundary). The LineSource is
// included when it carries stats of its own (MemorySource does; bus ports
// do not — the bus is registered once at machine level, not per
// hierarchy).
func (h *Hierarchy) StatSources() []NamedSource {
	srcs := []NamedSource{{"l1", h.L1}, {"l2", h.L2}}
	if h.TLB != nil {
		srcs = append(srcs, NamedSource{"tlb", h.TLB})
	}
	if h.victims != nil {
		srcs = append(srcs, NamedSource{"victim", h.victims})
	}
	if s, ok := h.Source.(StatSource); ok {
		srcs = append(srcs, NamedSource{"mem", s})
	}
	return srcs
}

// Reset empties every component (levels, TLB, victim buffer) and clears
// statistics.
func (h *Hierarchy) Reset() {
	h.memo = [fastSlots]fastMemo{}
	for _, s := range h.StatSources() {
		s.Reset()
	}
}

// ResetStats zeroes all counters, keeping contents.
func (h *Hierarchy) ResetStats() {
	for _, s := range h.StatSources() {
		s.ResetStats()
	}
}

// Access performs a demand access of size bytes at addr, spanning as many
// L1 lines as needed (element accesses in the workloads span exactly one).
// It returns the aggregate latency and the deepest level touched.
func (h *Hierarchy) Access(addr memsim.Addr, size int, write bool) Result {
	if size <= 0 {
		panic(fmt.Sprintf("cache: Access size %d", size))
	}
	first := addr.Line(h.L1.cfg.LineSize)
	last := (addr + memsim.Addr(size) - 1).Line(h.L1.cfg.LineSize)
	// Same-line fast path: a verified hint proves the line is L1-resident
	// in a sufficient state — any valid state for a read, Modified for a
	// write (a Shared-line write needs the coherence upgrade) — and that
	// its page translation is resident (an L1 line never spans pages), so
	// the full path would have been a pure L1+TLB hit. Re-touch the
	// memoized slots with the exact bookkeeping of the full hit path and
	// skip all searching.
	if h.FastPath && first == last {
		m := &h.memo[fastIdx(first)]
		if m.ln != nil && m.line == first && m.ln.tag == first &&
			(m.ln.state == Modified || (m.ln.state != Invalid && !write)) &&
			(h.TLB == nil || (m.tlb.valid && m.tlb.page == m.page)) {
			h.L1.touchFast(m.ln)
			if h.TLB != nil {
				h.TLB.touchFast(m.tlb)
			}
			return Result{Cycles: h.L1.cfg.HitLatency, Level: LevelL1}
		}
	}
	var walk int64
	if h.TLB != nil {
		// One translation per access; elements are naturally aligned and
		// never span pages. The walk serializes with the access.
		walk = h.TLB.Access(addr)
	}
	res := h.accessLine(first, write)
	res.Cycles += walk
	for l := first + memsim.Addr(h.L1.cfg.LineSize); l <= last; l += memsim.Addr(h.L1.cfg.LineSize) {
		r := h.accessLine(l, write)
		res.Cycles += r.Cycles
		res.MissPenalty += r.MissPenalty
		if r.Level > res.Level {
			res.Level = r.Level
		}
	}
	if h.FastPath && first == last {
		h.memoize(first)
	}
	return res
}

// memoize records the just-completed single-line access in the hint
// table. Only the single-line case is memoized: spanning accesses are not
// worth short-circuiting, and the workloads' element accesses never span
// lines. The demand access just completed, so the line is L1-resident
// (and `last` points at its slot) and its page freshly translated; the
// verified-fallback searches fail safe (no hint) should a future change
// break either invariant.
func (h *Hierarchy) memoize(first memsim.Addr) {
	ln := h.L1.last
	if ln == nil || ln.state == Invalid || ln.tag != first {
		if ln = h.L1.linePtr(first); ln == nil {
			return
		}
	}
	m := &h.memo[fastIdx(first)]
	if h.TLB != nil {
		page := first >> h.TLB.setShift
		e := h.TLB.last
		if e == nil || !e.valid || e.page != page {
			if e = h.TLB.entryPtr(first); e == nil {
				return
			}
		}
		m.tlb = e
		m.page = page
	}
	m.ln = ln
	m.line = first
}

// AccessRun performs count demand accesses of size bytes each, starting
// at addr and advancing strideBytes per access (strideBytes may be zero
// or negative), as one consecutive stream with nothing interleaved. It is
// observably identical to count individual Access calls: the first access
// of every L1 line the run touches performs the full state-machine walk
// (TLB, L1/L2 lookup, fill, victim selection, coherence probe), and the
// remaining same-line accesses — which that walk proves are pure L1+TLB
// hits — are retired with analytic stat and latency deltas. Whenever the
// legality predicate fails (spanning access, insufficient coherence
// state, missing translation, classification shadow attached, Coalesce
// off), the run falls back to per-access walks, so the entry point is
// always safe to use on a consecutive stream.
//
// The returned Result aggregates the run: summed cycles and miss
// penalties, deepest level touched. Callers feeding an overlap model with
// MaxOutstanding > 1 must not merge runs containing misses this way (the
// merge changes the per-access penalty grouping); the fast engine only
// emits AccessRun on machines that retire demand misses serially.
func (h *Hierarchy) AccessRun(addr memsim.Addr, size, count, strideBytes int, write bool) Result {
	var agg Result
	for k := 0; k < count; {
		a := memsim.Addr(int64(addr) + int64(k)*int64(strideBytes))
		r := h.Access(a, size, write)
		agg.Cycles += r.Cycles
		agg.MissPenalty += r.MissPenalty
		if r.Level > agg.Level {
			agg.Level = r.Level
		}
		k++
		n := sameLineRun(a, size, strideBytes, count-k, h.L1.cfg.LineSize)
		if n == 0 || !h.Coalesce || h.L1.classify != nil {
			continue
		}
		ln, e, ok := h.runHit(a.Line(h.L1.cfg.LineSize), write)
		if !ok {
			// Could not prove the tail consists of pure hits (e.g. the
			// walk above left the line Shared under a write upgrade path
			// that a future change reroutes): keep walking per access.
			continue
		}
		h.L1.touchRun(ln, int64(n))
		if h.TLB != nil {
			h.TLB.touchRun(e, int64(n))
		}
		agg.Cycles += int64(n) * h.L1.cfg.HitLatency
		k += n
	}
	return agg
}

// sameLineRun returns how many of the next avail accesses (size bytes,
// advancing strideBytes each) stay within the L1 line of the
// just-completed access at a. A spanning access (size crossing the line
// boundary) yields zero — spans take the full multi-line path.
func sameLineRun(a memsim.Addr, size, strideBytes, avail, lineSize int) int {
	if avail <= 0 {
		return 0
	}
	off := a.Offset(lineSize)
	if off+size > lineSize {
		return 0
	}
	var n int
	switch {
	case strideBytes == 0:
		return avail
	case strideBytes > 0:
		n = (lineSize - off - size) / strideBytes
	default:
		n = off / -strideBytes
	}
	if n > avail {
		n = avail
	}
	return n
}

// RunToken is a verified claim, produced by BeginRun, that a particular
// single-line access is currently a pure L1 (and TLB) hit: it carries
// direct pointers to the L1 slot and TLB slot that would serve the hit.
// The claim stays true for as long as the hierarchy performs nothing but
// retired hits — hits fill nothing, evict nothing, and refill nothing —
// so a caller may hold several tokens from consecutive BeginRun calls
// and retire against all of them. Any other hierarchy operation (a
// demand access, prefetch, coherence event, or reset) invalidates
// outstanding tokens; callers must discard them and re-verify.
type RunToken struct {
	ln *line
	e  *tlbEntry
}

// BeginRun is the legality predicate of run coalescing: it reports
// whether a demand access of size bytes at addr is provably a pure L1
// (and TLB) hit, i.e. whether RetireToken may retire repetitions of it
// analytically. The proof requires the access to stay within one L1 line
// whose slot currently holds the line in a sufficient state — any valid
// state for a read, Modified for a write (a Shared-line write needs a
// coherence upgrade, which is not a pure hit) — and, when a TLB is
// modelled, the page to be resident. Any intervening coherence event,
// eviction, or TLB refill makes the predicate fail, which is the
// fallback rule: the caller must then perform the accesses individually.
func (h *Hierarchy) BeginRun(addr memsim.Addr, size int, write bool) (RunToken, bool) {
	if !h.Coalesce || h.L1.classify != nil || size <= 0 {
		return RunToken{}, false
	}
	first := addr.Line(h.L1.cfg.LineSize)
	if (addr + memsim.Addr(size) - 1).Line(h.L1.cfg.LineSize) != first {
		return RunToken{}, false
	}
	ln, e, ok := h.runHit(first, write)
	if !ok {
		return RunToken{}, false
	}
	return RunToken{ln: ln, e: e}, true
}

// VerifyRun is BeginRun as a bare predicate, for callers (and tests)
// that only need the legality answer.
func (h *Hierarchy) VerifyRun(addr memsim.Addr, size int, write bool) bool {
	_, ok := h.BeginRun(addr, size, write)
	return ok
}

// RetireToken retires count guaranteed-hit accesses against a token with
// the exact aggregate bookkeeping of count individual hit walks (each
// costs the L1 hit latency; the caller accumulates timing, exactly as it
// accumulates per-access Results). The token must come from BeginRun
// with no intervening hierarchy operation other than other retirements —
// see RunToken; the differential tests in internal/cascade hold the fast
// engine to bit-identical metrics against the per-access reference
// engine, which is what makes the unchecked form safe to keep fast.
func (h *Hierarchy) RetireToken(t RunToken, count int64) {
	h.L1.touchRun(t.ln, count)
	if t.e != nil {
		h.TLB.touchRun(t.e, count)
	}
}

// RetireRun is the checked, address-based form of RetireToken: it
// re-establishes the legality predicate and panics on violation rather
// than silently diverging from the reference engine.
func (h *Hierarchy) RetireRun(addr memsim.Addr, size int, count int64, write bool) Result {
	if count <= 0 {
		return Result{}
	}
	t, ok := h.BeginRun(addr, size, write)
	if !ok {
		panic(fmt.Sprintf("cache: RetireRun(%s, %d, %d, %t) without a verified run", addr, size, count, write))
	}
	h.RetireToken(t, count)
	return Result{Cycles: count * h.L1.cfg.HitLatency, Level: LevelL1}
}

// CoalesceActive reports whether analytic run retirement is currently
// legal on this hierarchy: the Coalesce knob is on and no
// miss-classification shadow is attached (the shadow observes per-access
// touch order, which retirement elides).
func (h *Hierarchy) CoalesceActive() bool {
	return h.Coalesce && h.L1.classify == nil
}

// runHit locates the L1 slot and TLB slot that would serve a same-line
// hit at line address first, or ok=false when residency, state, or
// translation cannot be proved. It consults the same-line hint table
// first (verified, exactly like Access's fast path) and falls back to
// full searches, so it works with or without FastPath memoization.
func (h *Hierarchy) runHit(first memsim.Addr, write bool) (ln *line, e *tlbEntry, ok bool) {
	m := &h.memo[fastIdx(first)]
	ln = m.ln
	if ln == nil || m.line != first || ln.tag != first || ln.state == Invalid {
		ln = h.L1.linePtr(first)
	}
	if ln == nil || ln.state == Invalid || (write && ln.state != Modified) {
		return nil, nil, false
	}
	if h.TLB != nil {
		page := first >> h.TLB.setShift
		if m.tlb != nil && m.page == page && m.tlb.valid && m.tlb.page == page {
			e = m.tlb
		} else if e = h.TLB.entryPtr(first); e == nil {
			return nil, nil, false
		}
	}
	return ln, e, true
}

// accessLine handles a single L1-line-aligned demand access.
func (h *Hierarchy) accessLine(l1Addr memsim.Addr, write bool) Result {
	res := h.accessLineTimed(l1Addr, write)
	if write && h.StoreBuffered {
		return Result{Cycles: h.L1.cfg.HitLatency, Level: res.Level}
	}
	return res
}

// accessLineTimed performs the access with full latency accounting.
func (h *Hierarchy) accessLineTimed(l1Addr memsim.Addr, write bool) Result {
	l2Addr := l1Addr.Line(h.L2.cfg.LineSize)
	cycles := h.L1.cfg.HitLatency

	if hit, st := h.L1.Touch(l1Addr, write); hit {
		if write && st == Shared {
			// Write permission must come from the coherence layer.
			cycles += h.Source.UpgradeLine(l2Addr)
			h.L2.SetState(l2Addr, Modified)
			h.L1.SetState(l1Addr, Modified)
		}
		return Result{Cycles: cycles, Level: LevelL1}
	}

	if h.victims != nil {
		if st, ok := h.victims.take(l1Addr); ok {
			cycles += h.victims.lat
			if write && st == Shared {
				cycles += h.Source.UpgradeLine(l2Addr)
				h.L2.SetState(l2Addr, Modified)
				st = Modified
			} else if write {
				st = Modified
			}
			h.fillL1(l1Addr, st, false)
			return Result{Cycles: cycles, Level: LevelL1, MissPenalty: h.victims.lat}
		}
	}

	cycles += h.L2.cfg.HitLatency
	if hit, st := h.L2.Touch(l2Addr, write); hit {
		if write && st == Shared {
			cycles += h.Source.UpgradeLine(l2Addr)
			h.L2.SetState(l2Addr, Modified)
			st = Modified
		}
		l1State := st
		if write {
			l1State = Modified
		}
		h.fillL1(l1Addr, l1State, false)
		return Result{Cycles: cycles, Level: LevelL2, MissPenalty: cycles - h.L1.cfg.HitLatency}
	}

	lat, st := h.Source.FetchLine(l2Addr, write)
	cycles += lat
	h.fillL2(l2Addr, st, false)
	h.fillL1(l1Addr, st, false)
	return Result{Cycles: cycles, Level: LevelMem, MissPenalty: cycles - h.L1.cfg.HitLatency}
}

// fillL1 installs an L1 line, propagating a dirty victim's state into L2
// (which must contain the victim, by inclusion).
func (h *Hierarchy) fillL1(l1Addr memsim.Addr, st State, prefetch bool) {
	v := h.L1.Fill(l1Addr, st, prefetch)
	if v.Valid && v.Modified {
		vl2 := v.Addr.Line(h.L2.cfg.LineSize)
		if !h.L2.SetState(vl2, Modified) {
			panic(fmt.Sprintf("cache: inclusion violated: L1 victim %s absent from L2", v.Addr))
		}
	}
	if v.Valid && h.victims != nil {
		vst := Shared
		if v.Modified {
			vst = Modified
		}
		h.victims.insert(v.Addr, vst)
	}
	if st == Modified {
		// Invariant: a Modified L1 line implies a Modified L2 line.
		h.L2.SetState(l1Addr.Line(h.L2.cfg.LineSize), Modified)
	}
}

// fillL2 installs an L2 line, back-invalidating any L1 sublines of the
// victim and writing back dirty victims to the source.
func (h *Hierarchy) fillL2(l2Addr memsim.Addr, st State, prefetch bool) {
	v := h.L2.Fill(l2Addr, st, prefetch)
	if !v.Valid {
		return
	}
	dirty := v.Modified
	for sub := v.Addr; sub < v.Addr+memsim.Addr(h.L2.cfg.LineSize); sub += memsim.Addr(h.L1.cfg.LineSize) {
		if h.L1.Invalidate(sub) == Modified {
			dirty = true
		}
	}
	if h.victims != nil {
		h.victims.invalidate(v.Addr, h.L2.cfg.LineSize)
	}
	if dirty {
		h.Source.WritebackLine(v.Addr)
	}
}

// PrefetchLine installs the L2 line containing addr (and its first L1
// subline) without charging demand latency or demand statistics. It models
// both the compiler-inserted prefetches of the R10000's MIPSpro toolchain
// and hardware preload instructions. It reports whether a fetch from the
// source was needed.
func (h *Hierarchy) PrefetchLine(addr memsim.Addr) bool {
	l1Addr := addr.Line(h.L1.cfg.LineSize)
	l2Addr := addr.Line(h.L2.cfg.LineSize)
	if h.FastPath {
		// A verified hint answers the L1 presence probe without a set
		// search (Probe reads state only — no stats, no LRU — so the
		// short-cut is trivially identical).
		m := &h.memo[fastIdx(l1Addr)]
		if m.ln != nil && m.line == l1Addr && m.ln.tag == l1Addr && m.ln.state != Invalid {
			return false
		}
	}
	if h.L1.Probe(l1Addr) != Invalid {
		return false
	}
	if st := h.L2.Probe(l2Addr); st != Invalid {
		// Promote to L1 only; state follows L2's.
		h.fillL1(l1Addr, st, true)
		return false
	}
	_, st := h.Source.FetchLine(l2Addr, false)
	h.fillL2(l2Addr, st, true)
	h.fillL1(l1Addr, st, true)
	return true
}

// Probe reports the hierarchy's coherence state for the L2 line at addr.
func (h *Hierarchy) Probe(addr memsim.Addr) State {
	return h.L2.Probe(addr.Line(h.L2.cfg.LineSize))
}

// CoherenceInvalidate removes the L2 line (and its L1 sublines) in response
// to a remote write. It reports whether any removed copy was Modified, in
// which case the caller (the bus) takes responsibility for the data.
func (h *Hierarchy) CoherenceInvalidate(l2Addr memsim.Addr) (wasModified bool) {
	for sub := l2Addr; sub < l2Addr+memsim.Addr(h.L2.cfg.LineSize); sub += memsim.Addr(h.L1.cfg.LineSize) {
		if h.L1.Invalidate(sub) == Modified {
			wasModified = true
		}
	}
	if h.victims != nil {
		h.victims.invalidate(l2Addr, h.L2.cfg.LineSize)
	}
	if h.L2.Invalidate(l2Addr) == Modified {
		wasModified = true
	}
	return wasModified
}

// CoherenceDowngrade demotes a Modified line to Shared in response to a
// remote read, reporting whether this hierarchy held it Modified (and so
// supplies the data).
func (h *Hierarchy) CoherenceDowngrade(l2Addr memsim.Addr) (hadModified bool) {
	for sub := l2Addr; sub < l2Addr+memsim.Addr(h.L2.cfg.LineSize); sub += memsim.Addr(h.L1.cfg.LineSize) {
		if h.L1.Downgrade(sub) == Modified {
			hadModified = true
		}
	}
	if h.victims != nil && h.victims.downgrade(l2Addr, h.L2.cfg.LineSize) {
		hadModified = true
	}
	if h.L2.Downgrade(l2Addr) == Modified {
		hadModified = true
	}
	return hadModified
}

// CheckInclusion verifies the L1-subset-of-L2 invariant, returning an error
// describing the first violation. It is O(L1 lines) and intended for tests.
func (h *Hierarchy) CheckInclusion() error {
	var err error
	h.L1.ForEachLine(func(addr memsim.Addr, st State) {
		if err != nil {
			return
		}
		l2Addr := addr.Line(h.L2.cfg.LineSize)
		l2st := h.L2.Probe(l2Addr)
		if l2st == Invalid {
			err = fmt.Errorf("L1 line %s (%s) has no enclosing L2 line", addr, st)
			return
		}
		if st == Modified && l2st != Modified {
			err = fmt.Errorf("L1 line %s is Modified but L2 line %s is %s", addr, l2Addr, l2st)
		}
	})
	return err
}
