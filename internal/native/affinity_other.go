//go:build !linux

package native

// pinToCPU is a no-op on platforms without sched_setaffinity; the Go
// scheduler places the locked threads wherever it likes.
func pinToCPU(int) {}
