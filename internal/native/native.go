// Package native runs cascaded execution on the real host machine, the
// way the paper's own implementation did: worker goroutines locked to OS
// threads (and pinned to CPUs where the platform allows), control passed
// through a shared-memory flag that the next executor spins on, and
// helper phases that either touch the upcoming chunk's data or gather it
// into a per-worker sequential buffer.
//
// This package is a demonstration, not the reproduction vehicle: on
// modern hardware the effect the paper measured is largely erased by
// deep out-of-order execution, aggressive hardware prefetchers, and
// shared last-level caches, and Go offers no portable control over any
// of them (see DESIGN.md). The simulator in the sibling packages is the
// faithful substrate; this package exists so the technique can be tried
// natively.
package native

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Kernel describes a loop to cascade natively. Execute must be safe to
// call for disjoint ranges from different goroutines, but only one range
// is ever executed at a time (that is the point of cascading).
type Kernel struct {
	// Iters is the iteration count.
	Iters int
	// Execute runs iterations [lo, hi) against the home data.
	Execute func(lo, hi int)
	// Touch optionally reads the data iterations [lo, hi) will use,
	// warming the calling CPU's caches (the prefetch helper).
	Touch func(lo, hi int)
	// SlotsPerIter and Gather/ExecuteFromBuffer optionally implement the
	// restructuring helper: Gather packs the read-only operands of
	// [lo, hi) into buf (length (hi-lo)*SlotsPerIter), and
	// ExecuteFromBuffer consumes them.
	SlotsPerIter      int
	Gather            func(lo, hi int, buf []float64)
	ExecuteFromBuffer func(lo, hi int, buf []float64)
}

// Helper selects the helper phase for a native run.
type Helper int

const (
	// HelperNone cascades without helper work (isolates transfer cost).
	HelperNone Helper = iota
	// HelperTouch uses Kernel.Touch.
	HelperTouch
	// HelperGather uses Kernel.Gather/ExecuteFromBuffer.
	HelperGather
)

// String implements fmt.Stringer.
func (h Helper) String() string {
	switch h {
	case HelperNone:
		return "none"
	case HelperTouch:
		return "touch"
	case HelperGather:
		return "gather"
	default:
		return fmt.Sprintf("Helper(%d)", int(h))
	}
}

// Options configures a native run.
type Options struct {
	// Procs is the number of worker threads.
	Procs int
	// ChunkIters is the chunk size in iterations.
	ChunkIters int
	// Helper selects the helper phase.
	Helper Helper
	// PinCPUs requests CPU affinity for workers (Linux only; silently
	// ignored where unsupported).
	PinCPUs bool
	// HelperBlock is the granularity (iterations) at which helpers poll
	// for their execution signal — the jump-out latency. 0 means 1/16 of
	// a chunk.
	HelperBlock int
}

// Result reports a native run.
type Result struct {
	Elapsed time.Duration
	Chunks  int
	Procs   int
	// HelperIters counts iterations of helper work completed before the
	// signal arrived, summed over chunks.
	HelperIters int64
}

func (o Options) validate(k *Kernel) error {
	if k == nil || k.Execute == nil || k.Iters <= 0 {
		return errors.New("native: kernel must have Iters > 0 and Execute")
	}
	if o.Procs < 1 {
		return fmt.Errorf("native: Procs = %d", o.Procs)
	}
	if o.ChunkIters < 1 {
		return fmt.Errorf("native: ChunkIters = %d", o.ChunkIters)
	}
	switch o.Helper {
	case HelperNone:
	case HelperTouch:
		if k.Touch == nil {
			return errors.New("native: HelperTouch requires Kernel.Touch")
		}
	case HelperGather:
		if k.Gather == nil || k.ExecuteFromBuffer == nil || k.SlotsPerIter <= 0 {
			return errors.New("native: HelperGather requires Gather, ExecuteFromBuffer and SlotsPerIter > 0")
		}
	default:
		return fmt.Errorf("native: unknown helper %d", int(o.Helper))
	}
	return nil
}

// RunSequential executes the kernel on the calling goroutine and returns
// the elapsed time — the baseline.
func RunSequential(k *Kernel) (time.Duration, error) {
	if k == nil || k.Execute == nil || k.Iters <= 0 {
		return 0, errors.New("native: kernel must have Iters > 0 and Execute")
	}
	start := time.Now()
	k.Execute(0, k.Iters)
	return time.Since(start), nil
}

// Run cascades the kernel across o.Procs OS threads. Chunks are assigned
// round-robin; exactly one worker executes at any time, sequenced by an
// atomic turn counter each next executor spins on (the shared-memory flag
// of the paper, with its transfer cost intact). Helpers run between a
// worker's turns and jump out when signaled.
func Run(k *Kernel, o Options) (Result, error) {
	if err := o.validate(k); err != nil {
		return Result{}, err
	}
	nChunks := (k.Iters + o.ChunkIters - 1) / o.ChunkIters
	block := o.HelperBlock
	if block <= 0 {
		block = o.ChunkIters / 16
		if block < 1 {
			block = 1
		}
	}

	var turn atomic.Int64
	var helperIters atomic.Int64
	var wg sync.WaitGroup
	wg.Add(o.Procs)
	start := time.Now()
	for w := 0; w < o.Procs; w++ {
		go func(w int) {
			defer wg.Done()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			if o.PinCPUs {
				pinToCPU(w % runtime.NumCPU())
			}
			var buf []float64
			if o.Helper == HelperGather {
				buf = make([]float64, o.ChunkIters*k.SlotsPerIter)
			}
			for c := w; c < nChunks; c += o.Procs {
				lo := c * o.ChunkIters
				hi := lo + o.ChunkIters
				if hi > k.Iters {
					hi = k.Iters
				}
				// Helper phase: process in blocks, polling for the signal.
				gathered := lo
				if o.Helper != HelperNone {
					for b := lo; b < hi && turn.Load() < int64(c); b += block {
						be := b + block
						if be > hi {
							be = hi
						}
						switch o.Helper {
						case HelperTouch:
							k.Touch(b, be)
						case HelperGather:
							k.Gather(b, be, buf[(b-lo)*k.SlotsPerIter:(be-lo)*k.SlotsPerIter])
						}
						gathered = be
					}
					helperIters.Add(int64(gathered - lo))
				}
				// Await the turn: this spin-read of the shared counter is
				// the paper's control-transfer mechanism.
				for spins := 0; turn.Load() < int64(c); spins++ {
					if spins%4096 == 4095 {
						runtime.Gosched() // oversubscribed fallback
					}
				}
				// Execution phase.
				if o.Helper == HelperGather && gathered > lo {
					k.ExecuteFromBuffer(lo, gathered, buf[:(gathered-lo)*k.SlotsPerIter])
					if gathered < hi {
						k.Execute(gathered, hi)
					}
				} else {
					k.Execute(lo, hi)
				}
				turn.Store(int64(c) + 1)
			}
		}(w)
	}
	wg.Wait()
	return Result{
		Elapsed:     time.Since(start),
		Chunks:      nChunks,
		Procs:       o.Procs,
		HelperIters: helperIters.Load(),
	}, nil
}
