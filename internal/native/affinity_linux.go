//go:build linux

package native

import (
	"syscall"
	"unsafe"
)

// pinToCPU binds the calling OS thread to the given CPU using
// sched_setaffinity. Errors are ignored: affinity is an optimization, and
// the demo must run in containers that deny the syscall.
func pinToCPU(cpu int) {
	if cpu < 0 {
		return
	}
	var mask [16]uint64 // room for 1024 CPUs
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	// Thread id 0 means "calling thread" for sched_setaffinity.
	syscall.Syscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
}
