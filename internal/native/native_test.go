package native

import (
	"testing"
)

// scatterKernel builds the paper's synthetic loop natively:
// X[IJ[i]] += A[i] + B[i], with gather support.
func scatterKernel(n int) (*Kernel, []float64) {
	x := make([]float64, n)
	ij := make([]int32, n)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		ij[i] = int32((i * 17) % n)
		a[i] = float64(i % 13)
		b[i] = float64(i % 7)
	}
	k := &Kernel{
		Iters: n,
		Execute: func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x[ij[i]] += a[i] + b[i]
			}
		},
		Touch: func(lo, hi int) {
			var sink float64
			for i := lo; i < hi; i++ {
				sink += x[ij[i]] + a[i] + b[i]
			}
			_ = sink
		},
		SlotsPerIter: 2,
		Gather: func(lo, hi int, buf []float64) {
			for i := lo; i < hi; i++ {
				buf[(i-lo)*2] = a[i] + b[i]
				buf[(i-lo)*2+1] = float64(ij[i])
			}
		},
		ExecuteFromBuffer: func(lo, hi int, buf []float64) {
			for i := lo; i < hi; i++ {
				x[int(buf[(i-lo)*2+1])] += buf[(i-lo)*2]
			}
		},
	}
	return k, x
}

// expected computes the reference result without the library.
func expected(n int) []float64 {
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i)
	}
	for i := 0; i < n; i++ {
		want[(i*17)%n] += float64(i%13) + float64(i%7)
	}
	return want
}

func checkEqual(t *testing.T, got, want []float64, label string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: X[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestRunSequential(t *testing.T) {
	const n = 10000
	k, x := scatterKernel(n)
	d, err := RunSequential(k)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("no elapsed time")
	}
	checkEqual(t, x, expected(n), "sequential")
}

func TestRunCascadedCorrectness(t *testing.T) {
	const n = 50000
	want := expected(n)
	for _, helper := range []Helper{HelperNone, HelperTouch, HelperGather} {
		for _, procs := range []int{1, 2, 4} {
			k, x := scatterKernel(n)
			res, err := Run(k, Options{
				Procs:      procs,
				ChunkIters: 1000,
				Helper:     helper,
				PinCPUs:    procs <= 4,
			})
			if err != nil {
				t.Fatalf("%v/%dp: %v", helper, procs, err)
			}
			if res.Chunks != 50 {
				t.Errorf("%v/%dp: chunks = %d, want 50", helper, procs, res.Chunks)
			}
			checkEqual(t, x, want, helper.String())
		}
	}
}

func TestRunPartialLastChunk(t *testing.T) {
	const n = 10007 // not a multiple of the chunk size
	want := expected(n)
	k, x := scatterKernel(n)
	res, err := Run(k, Options{Procs: 2, ChunkIters: 1000, Helper: HelperGather})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 11 {
		t.Errorf("chunks = %d, want 11", res.Chunks)
	}
	checkEqual(t, x, want, "partial last chunk")
}

func TestHelperIterationsCounted(t *testing.T) {
	const n = 50000
	k, _ := scatterKernel(n)
	res, err := Run(k, Options{Procs: 2, ChunkIters: 500, Helper: HelperTouch})
	if err != nil {
		t.Fatal(err)
	}
	if res.HelperIters <= 0 {
		t.Error("no helper iterations recorded")
	}
	if res.HelperIters > int64(n) {
		t.Errorf("helper iterations %d exceed total %d", res.HelperIters, n)
	}
}

func TestOptionValidation(t *testing.T) {
	k, _ := scatterKernel(100)
	cases := []Options{
		{Procs: 0, ChunkIters: 10},
		{Procs: 1, ChunkIters: 0},
		{Procs: 1, ChunkIters: 10, Helper: Helper(9)},
	}
	for i, o := range cases {
		if _, err := Run(k, o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Helper requirements.
	bare := &Kernel{Iters: 10, Execute: func(lo, hi int) {}}
	if _, err := Run(bare, Options{Procs: 1, ChunkIters: 5, Helper: HelperTouch}); err == nil {
		t.Error("HelperTouch without Touch should fail")
	}
	if _, err := Run(bare, Options{Procs: 1, ChunkIters: 5, Helper: HelperGather}); err == nil {
		t.Error("HelperGather without Gather should fail")
	}
	if _, err := Run(nil, Options{Procs: 1, ChunkIters: 5}); err == nil {
		t.Error("nil kernel should fail")
	}
	if _, err := RunSequential(nil); err == nil {
		t.Error("nil kernel should fail sequentially")
	}
}

func TestHelperString(t *testing.T) {
	if HelperNone.String() != "none" || HelperTouch.String() != "touch" || HelperGather.String() != "gather" {
		t.Error("helper names")
	}
	if Helper(7).String() == "" {
		t.Error("unknown helper should render")
	}
}

func TestPinToCPUDoesNotPanic(t *testing.T) {
	pinToCPU(0)
	pinToCPU(-1)
}
