// Package gallery is a library of classic memory-bound kernels expressed
// in the loop IR — the workloads a user would first try cascaded
// execution on. Each kernel builder returns a fresh address space and a
// validated loop; sizes are in elements and footprints scale linearly.
//
// The kernels span the behaviour space the paper's analysis carves out:
// pure streams (triad, copy), stencils (reuse between neighbours),
// conflict-engineered lockstep streams, random gathers, and
// histogram-style scatters. The gallery experiment runs each under all
// three strategies and tabulates who benefits, which is a compact summary
// of when cascading is worth applying.
package gallery

import (
	"fmt"

	"repro/internal/loopir"
	"repro/internal/memsim"
)

// Kernel is one gallery entry.
type Kernel struct {
	Name        string
	Description string
	// Build constructs the kernel over n elements.
	Build func(n int) (*memsim.Space, *loopir.Loop, error)
}

// Kernels returns the gallery in presentation order.
func Kernels() []Kernel {
	return []Kernel{
		{
			Name:        "triad",
			Description: "STREAM triad a(i) = b(i) + s*c(i); pure streams, no reuse",
			Build:       buildTriad,
		},
		{
			Name:        "triad-conflict",
			Description: "triad with all arrays on one cache-set congruence class",
			Build:       buildTriadConflict,
		},
		{
			Name:        "stencil3",
			Description: "3-point stencil d(i) = w(s(i-1), s(i), s(i+1)); neighbour reuse",
			Build:       buildStencil3,
		},
		{
			Name:        "gather",
			Description: "random gather a(i) = x(idx(i)); no locality in x",
			Build:       buildGather,
		},
		{
			Name:        "histogram",
			Description: "scatter h(b(i)) += w(i) into a small table; RMW randomness",
			Build:       buildHistogram,
		},
		{
			Name:        "transpose",
			Description: "gather transpose out(i) = in(perm(i)) with large row stride",
			Build:       buildTranspose,
		},
	}
}

// Lookup returns the kernel with the given name.
func Lookup(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("gallery: no kernel %q", name)
}

// lcg is the gallery's deterministic fill generator.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

func (g *lcg) intn(n int) int { return int(g.next() % uint64(n)) }

// Shared closure factories. The kernels' value semantics are stateless,
// so the factories just mint fresh instances of the same pure functions;
// declaring them in factory form marks every kernel reentrant, which
// lets the host-parallel engine execute gallery cascades concurrently.
func triadPre() func(int, []float64) []float64 {
	return func(_ int, ro []float64) []float64 { return []float64{ro[0] + 3.0*ro[1]} }
}

func passPre() func(int, []float64, []float64) []float64 {
	return func(_ int, pre, _ []float64) []float64 { return pre }
}

func validate(l *loopir.Loop) error {
	if err := l.Validate(); err != nil {
		return err
	}
	return l.CheckBounds()
}

func buildTriad(n int) (*memsim.Space, *loopir.Loop, error) {
	s := memsim.NewSpace()
	// Staggered congruence classes: large arrays allocated back-to-back
	// would collide modulo every way size (that is what triad-conflict
	// shows), so the clean variant spreads them deliberately.
	a := s.AllocAt("A", n, 8, 0, 1<<20)
	b := s.AllocAt("B", n, 8, (340<<10)+1024, 1<<20)
	c := s.AllocAt("C", n, 8, (680<<10)+2048, 1<<20)
	b.Fill(func(i int) float64 { return float64(i % 101) })
	c.Fill(func(i int) float64 { return float64(i % 53) })
	l := &loopir.Loop{
		Name:  "triad",
		Iters: n,
		RO: []loopir.Ref{
			{Array: b, Index: loopir.Ident},
			{Array: c, Index: loopir.Ident},
		},
		Writes:    []loopir.Ref{{Array: a, Index: loopir.Ident}},
		PreCycles: 2, FinalCycles: 1,
		NPre:     1,
		NewPre:   triadPre,
		NewFinal: passPre,
	}
	return s, l, validate(l)
}

func buildTriadConflict(n int) (*memsim.Space, *loopir.Loop, error) {
	s := memsim.NewSpace()
	a := s.AllocAt("A", n, 8, 0, 1<<20)
	b := s.AllocAt("B", n, 8, 0, 1<<20)
	c := s.AllocAt("C", n, 8, 0, 1<<20)
	b.Fill(func(i int) float64 { return float64(i % 101) })
	c.Fill(func(i int) float64 { return float64(i % 53) })
	l := &loopir.Loop{
		Name:  "triad-conflict",
		Iters: n,
		RO: []loopir.Ref{
			{Array: b, Index: loopir.Ident},
			{Array: c, Index: loopir.Ident},
		},
		Writes:    []loopir.Ref{{Array: a, Index: loopir.Ident}},
		PreCycles: 2, FinalCycles: 1,
		NPre:     1,
		NewPre:   triadPre,
		NewFinal: passPre,
	}
	return s, l, validate(l)
}

func buildStencil3(n int) (*memsim.Space, *loopir.Loop, error) {
	s := memsim.NewSpace()
	src := s.Alloc("S", n+2, 8, 4096)
	dst := s.Alloc("D", n, 8, 4096)
	src.Fill(func(i int) float64 { return float64(i % 211) })
	at := func(off int) loopir.Ref {
		return loopir.Ref{Array: src, Index: loopir.Affine{Scale: 1, Offset: off}}
	}
	l := &loopir.Loop{
		Name:  "stencil3",
		Iters: n,
		RO:    []loopir.Ref{at(0), at(1), at(2)},
		Writes: []loopir.Ref{
			{Array: dst, Index: loopir.Ident},
		},
		PreCycles: 4, FinalCycles: 1,
		NPre: 1,
		NewPre: func() func(int, []float64) []float64 {
			return func(_ int, ro []float64) []float64 {
				return []float64{0.25*ro[0] + 0.5*ro[1] + 0.25*ro[2]}
			}
		},
		NewFinal: passPre,
	}
	return s, l, validate(l)
}

func buildGather(n int) (*memsim.Space, *loopir.Loop, error) {
	s := memsim.NewSpace()
	x := s.Alloc("X", n, 8, 4096)
	idx := s.Alloc("IDX", n, 4, 4096)
	a := s.Alloc("A", n, 8, 4096)
	x.Fill(func(i int) float64 { return float64(i % 307) })
	rng := lcg(11)
	idx.Fill(func(int) float64 { return float64(rng.intn(n)) })
	l := &loopir.Loop{
		Name:  "gather",
		Iters: n,
		RO: []loopir.Ref{
			{Array: x, Index: loopir.Indirect{Tbl: idx, Entry: loopir.Ident}},
		},
		Writes:    []loopir.Ref{{Array: a, Index: loopir.Ident}},
		PreCycles: 1, FinalCycles: 1,
		NewFinal: passPre,
		// The gather defeats static prefetch analysis.
		NoCompilerPrefetch: true,
	}
	return s, l, validate(l)
}

func buildHistogram(n int) (*memsim.Space, *loopir.Loop, error) {
	s := memsim.NewSpace()
	bins := n / 64
	if bins < 64 {
		bins = 64
	}
	h := s.Alloc("H", bins, 8, 4096)
	b := s.Alloc("BIN", n, 4, 4096)
	w := s.Alloc("W", n, 8, 4096)
	rng := lcg(23)
	b.Fill(func(int) float64 { return float64(rng.intn(bins)) })
	w.Fill(func(i int) float64 { return 1 + float64(i%7) })
	href := loopir.Ref{Array: h, Index: loopir.Indirect{Tbl: b, Entry: loopir.Ident}}
	l := &loopir.Loop{
		Name:      "histogram",
		Iters:     n,
		RO:        []loopir.Ref{{Array: w, Index: loopir.Ident}},
		RW:        []loopir.Ref{href},
		Writes:    []loopir.Ref{href},
		PreCycles: 0, FinalCycles: 2,
		NewFinal: func() func(int, []float64, []float64) []float64 {
			return func(_ int, pre, rw []float64) []float64 {
				return []float64{rw[0] + pre[0]}
			}
		},
		NoCompilerPrefetch: true,
	}
	return s, l, validate(l)
}

func buildTranspose(n int) (*memsim.Space, *loopir.Loop, error) {
	// Square-ish matrix: rows x cols = n elements, read column-major.
	cols := 1
	for cols*cols < n {
		cols <<= 1
	}
	rows := n / cols
	if rows < 1 {
		rows = 1
	}
	total := rows * cols
	s := memsim.NewSpace()
	in := s.Alloc("IN", total, 8, 4096)
	out := s.Alloc("OUT", total, 8, 4096)
	perm := s.Alloc("PERM", total, 4, 4096)
	in.Fill(func(i int) float64 { return float64(i % 509) })
	perm.Fill(func(i int) float64 {
		r, c := i/cols, i%cols
		return float64(c*rows + r) // column-major source index
	})
	l := &loopir.Loop{
		Name:  "transpose",
		Iters: total,
		RO: []loopir.Ref{
			{Array: in, Index: loopir.Indirect{Tbl: perm, Entry: loopir.Ident}},
		},
		Writes:    []loopir.Ref{{Array: out, Index: loopir.Ident}},
		PreCycles: 0, FinalCycles: 1,
		NewFinal:           passPre,
		NoCompilerPrefetch: true,
	}
	return s, l, validate(l)
}
