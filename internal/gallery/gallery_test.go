package gallery

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/machine"
)

func TestAllKernelsBuildAndValidate(t *testing.T) {
	for _, k := range Kernels() {
		space, l, err := k.Build(1 << 12)
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if space == nil || l == nil {
			t.Errorf("%s: nil result", k.Name)
		}
		if k.Description == "" {
			t.Errorf("%s: no description", k.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	k, err := Lookup("gather")
	if err != nil || k.Name != "gather" {
		t.Errorf("Lookup(gather) = %v, %v", k.Name, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestKernelNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kernels() {
		if seen[k.Name] {
			t.Errorf("duplicate kernel %q", k.Name)
		}
		seen[k.Name] = true
	}
}

// TestKernelStrategyEquivalence: every kernel computes identical results
// under sequential and cascaded execution.
func TestKernelStrategyEquivalence(t *testing.T) {
	const n = 1 << 13
	for _, k := range Kernels() {
		_, lref, err := k.Build(n)
		if err != nil {
			t.Fatal(err)
		}
		cascade.RunSequential(machine.MustNew(machine.PentiumPro(1)), lref, true)
		want := lref.Writes[0].Array.Snapshot()

		for _, h := range []cascade.Helper{cascade.HelperPrefetch, cascade.HelperRestructure} {
			space, l, err := k.Build(n)
			if err != nil {
				t.Fatal(err)
			}
			opts := cascade.DefaultOptions(h, space)
			opts.ChunkBytes = 4096
			cascade.MustRun(machine.MustNew(machine.PentiumPro(3)), l, opts)
			if eq, idx := l.Writes[0].Array.Equal(want); !eq {
				t.Errorf("%s/%v: diverged at %d", k.Name, h, idx)
			}
		}
	}
}

func TestTransposePermutationIsBijective(t *testing.T) {
	_, l, err := buildTranspose(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	perm := l.Arrays()[2] // IN, OUT, PERM — find by name instead
	for _, a := range l.Arrays() {
		if a.Name() == "PERM" {
			perm = a
		}
	}
	seen := make(map[int]bool, perm.Len())
	for i := 0; i < perm.Len(); i++ {
		v := perm.LoadInt(i)
		if seen[v] {
			t.Fatalf("permutation repeats %d", v)
		}
		seen[v] = true
	}
	if len(seen) != perm.Len() {
		t.Errorf("permutation covers %d of %d", len(seen), perm.Len())
	}
}

func TestTriadVariantsDifferInPlacement(t *testing.T) {
	_, clean, err := buildTriad(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	_, conflict, err := buildTriadConflict(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	mod := func(base uint64) uint64 { return base % (1 << 20) }
	var cleanClasses, conflictClasses []uint64
	for _, a := range clean.Arrays() {
		cleanClasses = append(cleanClasses, mod(uint64(a.Base())))
	}
	for _, a := range conflict.Arrays() {
		conflictClasses = append(conflictClasses, mod(uint64(a.Base())))
	}
	allSame := func(xs []uint64) bool {
		for _, x := range xs {
			if x != xs[0] {
				return false
			}
		}
		return true
	}
	if allSame(cleanClasses) {
		t.Error("clean triad arrays share a congruence class")
	}
	if !allSame(conflictClasses) {
		t.Error("conflict triad arrays should share a congruence class")
	}
}
