package wave5

import (
	"repro/internal/loopir"
)

// Physics constants of the mover. Their values are irrelevant to the
// memory behaviour; they exist so the value semantics are non-trivial and
// result equality across execution strategies is a meaningful check.
const (
	dt = 0.01 // time step
	qm = 0.5  // charge/mass ratio
)

// buildLoops constructs the fifteen PARMVR loops over the dataset. Loop
// order matters: later loops consume arrays earlier loops produce, exactly
// as a real mover's phases do.
func buildLoops(d *dataset, p Params) []*loopir.Loop {
	n, g := p.Particles, p.Cells

	ciAt := func() loopir.IndexExpr { return loopir.Indirect{Tbl: d.ci, Entry: loopir.Ident} }
	id := loopir.Ident

	// pre1/fin1 wrap a one-value iteration function in the loopir
	// NewPre/NewFinal factory shape. Each factory call builds a closure
	// with a private result slot reused across iterations: every
	// execution strategy consumes a returned slice before its iteration
	// ends (values are stored or buffered immediately), so the per-
	// closure reuse is safe and keeps the simulator's hot loop
	// allocation-free, while distinct execution contexts — the parallel
	// engine's per-processor runners — each get their own slot.
	pre1 := func(f func(ro []float64) float64) func() func(int, []float64) []float64 {
		return func() func(int, []float64) []float64 {
			out := make([]float64, 1)
			return func(_ int, ro []float64) []float64 {
				out[0] = f(ro)
				return out
			}
		}
	}
	fin1 := func(f func(pre, rw []float64) float64) func() func(int, []float64, []float64) []float64 {
		return func() func(int, []float64, []float64) []float64 {
			out := make([]float64, 1)
			return func(_ int, pre, rw []float64) []float64 {
				out[0] = f(pre, rw)
				return out
			}
		}
	}
	// identity is the NewFinal factory for loops whose Final just passes
	// the precomputed values through (stateless, but the parallel
	// engine's reentrancy gate wants the factory form).
	identity := func() func(int, []float64, []float64) []float64 {
		return func(_ int, pre, _ []float64) []float64 { return pre }
	}

	loops := []*loopir.Loop{
		// 1-3: field gathers. Indirect reads of grid fields at each
		// particle's cell — random access over the grid, plus two big
		// strided streams. The restructuring helper converts the gather
		// into a sequential stream; these are the paper's high-speedup
		// loops.
		{
			Name:  "gather_ex",
			Iters: n,
			RO: []loopir.Ref{
				{Array: d.ex, Index: ciAt()},
				{Array: d.qw, Index: id},
			},
			Writes:    []loopir.Ref{{Array: d.ax, Index: id}},
			PreCycles: 10, FinalCycles: 4,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return qm * ro[0] * ro[1] }),
			NewFinal: identity,
		},
		{
			Name:  "gather_ey",
			Iters: n,
			RO: []loopir.Ref{
				{Array: d.ey, Index: ciAt()},
				{Array: d.qw, Index: id},
			},
			Writes:    []loopir.Ref{{Array: d.ay, Index: id}},
			PreCycles: 10, FinalCycles: 4,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return qm * ro[0] * ro[1] }),
			NewFinal: identity,
		},
		{
			Name:  "gather_bz",
			Iters: n,
			RO: []loopir.Ref{
				{Array: d.bz, Index: ciAt()},
			},
			Writes:    []loopir.Ref{{Array: d.t1, Index: id}},
			PreCycles: 0, FinalCycles: 8,
			NewFinal: identity,
		},

		// 4-7: velocity and position pushes. Lockstep strided streams;
		// 4 and 6 walk three/two congruence-class-0 arrays and thrash
		// the 2-way L1s, 5 and 7 use the milder class. Moderate paper
		// speedups.
		{
			Name:  "push_vx",
			Iters: n,
			RO: []loopir.Ref{
				{Array: d.ax, Index: id},
				{Array: d.t1, Index: id},
			},
			RW:        []loopir.Ref{{Array: d.vx, Index: id}},
			Writes:    []loopir.Ref{{Array: d.vx, Index: id}},
			PreCycles: 8, FinalCycles: 5,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return dt * (ro[0] + qm*ro[1]) }),
			NewFinal: fin1(func(pre, rw []float64) float64 { return rw[0] + pre[0] }),
		},
		{
			Name:  "push_vy",
			Iters: n,
			RO: []loopir.Ref{
				{Array: d.ay, Index: id},
				{Array: d.t1, Index: id},
			},
			RW:        []loopir.Ref{{Array: d.vy, Index: id}},
			Writes:    []loopir.Ref{{Array: d.vy, Index: id}},
			PreCycles: 8, FinalCycles: 5,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return dt * (ro[0] - qm*ro[1]) }),
			NewFinal: fin1(func(pre, rw []float64) float64 { return rw[0] + pre[0] }),
		},
		{
			Name:  "push_px",
			Iters: n,
			RO: []loopir.Ref{
				{Array: d.vx, Index: id},
			},
			RW:        []loopir.Ref{{Array: d.px, Index: id}},
			Writes:    []loopir.Ref{{Array: d.px, Index: id}},
			PreCycles: 8, FinalCycles: 6,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return dt * ro[0] }),
			NewFinal: fin1(func(pre, rw []float64) float64 { return rw[0] + pre[0] }),
		},
		{
			Name:  "push_py",
			Iters: n,
			RO: []loopir.Ref{
				{Array: d.vy, Index: id},
			},
			RW:        []loopir.Ref{{Array: d.py, Index: id}},
			Writes:    []loopir.Ref{{Array: d.py, Index: id}},
			PreCycles: 8, FinalCycles: 6,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return dt * ro[0] }),
			NewFinal: fin1(func(pre, rw []float64) float64 { return rw[0] + pre[0] }),
		},

		// 8-10: grid deposits. Indirect read-modify-write scatters onto
		// the grid; the scatter itself cannot be restructured (it is
		// written data), but the particle-side streams can, and the
		// helper shadow-loads the scatter targets.
		{
			Name:  "deposit_rho",
			Iters: n,
			RO: []loopir.Ref{
				{Array: d.qw, Index: id},
			},
			RW:        []loopir.Ref{{Array: d.rho, Index: ciAt()}},
			Writes:    []loopir.Ref{{Array: d.rho, Index: ciAt()}},
			PreCycles: 0, FinalCycles: 6,
			NewFinal: fin1(func(pre, rw []float64) float64 { return rw[0] + pre[0] }),
		},
		{
			Name:  "deposit_jx",
			Iters: n,
			RO: []loopir.Ref{
				{Array: d.qw, Index: id},
				{Array: d.vx, Index: id},
			},
			RW:        []loopir.Ref{{Array: d.jx, Index: ciAt()}},
			Writes:    []loopir.Ref{{Array: d.jx, Index: ciAt()}},
			PreCycles: 5, FinalCycles: 5,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return ro[0] * ro[1] }),
			NewFinal: fin1(func(pre, rw []float64) float64 { return rw[0] + pre[0] }),
		},
		{
			Name:  "deposit_jy",
			Iters: n,
			RO: []loopir.Ref{
				{Array: d.qw, Index: id},
				{Array: d.vy, Index: id},
			},
			RW:        []loopir.Ref{{Array: d.jy, Index: ciAt()}},
			Writes:    []loopir.Ref{{Array: d.jy, Index: ciAt()}},
			PreCycles: 5, FinalCycles: 5,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return ro[0] * ro[1] }),
			NewFinal: fin1(func(pre, rw []float64) float64 { return rw[0] + pre[0] }),
		},

		// 11-13: grid-sized stencil/differentiation sweeps. Small
		// footprints (within or near L2); the paper's low-speedup loops,
		// where transfer overhead can even cause a slight slowdown.
		{
			Name:  "smooth_rho",
			Iters: g - 2,
			RO: []loopir.Ref{
				{Array: d.rho, Index: loopir.Affine{Scale: 1, Offset: 0}},
				{Array: d.rho, Index: loopir.Affine{Scale: 1, Offset: 1}},
				{Array: d.rho, Index: loopir.Affine{Scale: 1, Offset: 2}},
			},
			Writes:    []loopir.Ref{{Array: d.sm, Index: loopir.Affine{Scale: 1, Offset: 1}}},
			PreCycles: 4, FinalCycles: 2,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return 0.25*ro[0] + 0.5*ro[1] + 0.25*ro[2] }),
			NewFinal: identity,
		},
		{
			Name:  "field_ex",
			Iters: g - 2,
			RO: []loopir.Ref{
				{Array: d.phi, Index: loopir.Affine{Scale: 1, Offset: 0}},
				{Array: d.phi, Index: loopir.Affine{Scale: 1, Offset: 2}},
			},
			Writes:    []loopir.Ref{{Array: d.ex, Index: loopir.Affine{Scale: 1, Offset: 1}}},
			PreCycles: 3, FinalCycles: 2,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return 0.5 * (ro[0] - ro[1]) }),
			NewFinal: identity,
		},
		{
			Name:  "field_ey",
			Iters: g - 2,
			RO: []loopir.Ref{
				{Array: d.sm, Index: loopir.Affine{Scale: 1, Offset: 0}},
				{Array: d.sm, Index: loopir.Affine{Scale: 1, Offset: 2}},
			},
			Writes:    []loopir.Ref{{Array: d.ey, Index: loopir.Affine{Scale: 1, Offset: 1}}},
			PreCycles: 3, FinalCycles: 2,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return 0.5 * (ro[0] - ro[1]) }),
			NewFinal: identity,
		},

		// 14: four lockstep streams all in congruence class 0 (plus one in
		// class 64K) — the conflict-dominated loop where restructuring
		// shines brightest.
		{
			// Only the active half of the particles is combined, like the
			// real mover's conditionally-updated species.
			Name:  "combine_t2",
			Iters: n / 2,
			RO: []loopir.Ref{
				{Array: d.t1, Index: id},
				{Array: d.ax, Index: id},
				{Array: d.ay, Index: id},
			},
			Writes:    []loopir.Ref{{Array: d.t2, Index: id}},
			PreCycles: 14, FinalCycles: 6,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return 0.3*ro[0] + 0.5*ro[1] + 0.2*ro[2] }),
			NewFinal: identity,
		},

		// 15: energy reduction. Three read-only streams into a register-
		// resident accumulator (modelled as a one-element array).
		{
			Name:  "energy",
			Iters: n,
			RO: []loopir.Ref{
				{Array: d.vx, Index: id},
				{Array: d.vy, Index: id},
				{Array: d.qw, Index: id},
			},
			RW:        []loopir.Ref{{Array: d.acc, Index: loopir.Affine{}}},
			Writes:    []loopir.Ref{{Array: d.acc, Index: loopir.Affine{}}},
			PreCycles: 10, FinalCycles: 4,
			NPre:     1,
			NewPre:   pre1(func(ro []float64) float64 { return ro[2] * (ro[0]*ro[0] + ro[1]*ro[1]) }),
			NewFinal: fin1(func(pre, rw []float64) float64 { return rw[0] + pre[0] }),
		},
	}
	return loops
}
