// Package wave5 provides the PARMVR workload: a 15-loop synthetic stand-in
// for the particle-mover subroutine of the Spec95fp benchmark wave5, which
// the paper uses for its measurements (§3.1).
//
// SPEC sources cannot be redistributed, so the loops here are modelled on
// what PARMVR does — wave5 is a 2-D particle-in-cell plasma code, and its
// mover gathers field values at particle cells (indirect reads through a
// cell-index array), pushes velocities and positions (lockstep strided
// streams), deposits charge and current back onto the grid (indirect
// read-modify-write scatters), and smooths/differentiates grid quantities
// (small stencil sweeps). Like the paper's enlarged dataset, per-loop
// footprints span roughly 0.25-17 MB, far exceeding the caches of both
// simulated machines, and several particle arrays are deliberately placed
// at conflicting cache-set congruences — large Fortran arrays laid out
// contiguously in COMMON blocks collide in set-associative caches exactly
// this way, and those conflict misses are what data restructuring
// eliminates (§3.3).
package wave5

import "fmt"

// Params sizes the PARMVR dataset.
type Params struct {
	// Particles is the particle count; nine of the fifteen loops iterate
	// over particles.
	Particles int
	// Cells is the grid size; gather/scatter targets and the stencil
	// loops are Cells-sized.
	Cells int
	// Seed drives the deterministic pseudo-random initial values and the
	// particle->cell assignment.
	Seed uint64
}

// DefaultParams reproduces the paper's enlarged dataset scale: per-loop
// footprints from ~0.25 MB (grid loops) to ~14 MB (gather loops).
func DefaultParams() Params {
	return Params{Particles: 525_000, Cells: 16_384, Seed: 1}
}

// Scaled shrinks (or grows) the dataset by factor f, preserving the
// workload's shape. Benchmarks use small factors to keep wall time sane;
// EXPERIMENTS.md records full-scale runs.
func (p Params) Scaled(f float64) Params {
	scale := func(n int, min int) int {
		v := int(float64(n) * f)
		if v < min {
			v = min
		}
		return v
	}
	return Params{
		Particles: scale(p.Particles, 8_192),
		Cells:     scale(p.Cells, 1_024),
		Seed:      p.Seed,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Particles < 1024 {
		return fmt.Errorf("wave5: need at least 1024 particles, got %d", p.Particles)
	}
	if p.Cells < 64 {
		return fmt.Errorf("wave5: need at least 64 cells, got %d", p.Cells)
	}
	return nil
}

// lcg is a 64-bit linear congruential generator for deterministic fills.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

// unit returns the next value in [0, 1).
func (g *lcg) unit() float64 {
	return float64(g.next()>>11) / float64(uint64(1)<<53)
}

// intn returns the next value in [0, n).
func (g *lcg) intn(n int) int {
	return int(g.next() % uint64(n))
}
