package wave5

import "repro/internal/memsim"

// congruenceModulus is the placement modulus for the big particle arrays.
// 1 MB is the R10000's L2 way size; arrays congruent modulo 1 MB are also
// congruent modulo every smaller way size (PentiumPro L2 128 KB, both L1s'
// 4-16 KB), so lockstep walks over same-class arrays contend for the same
// sets at every cache level of both machines.
const congruenceModulus = 1 << 20

// dataset holds the PARMVR arrays. Particle arrays have Particles
// elements; grid arrays have Cells.
type dataset struct {
	// Particle state (8-byte reals).
	px, py *memsim.Array // positions
	vx, vy *memsim.Array // velocities
	ax, ay *memsim.Array // gathered accelerations
	t1, t2 *memsim.Array // mover temporaries
	qw     *memsim.Array // charge weights (read-only)
	// ci maps each particle to its grid cell (4-byte integers,
	// read-only within PARMVR).
	ci *memsim.Array

	// Grid state (8-byte reals).
	ex, ey, bz *memsim.Array // fields (gather sources)
	phi        *memsim.Array // potential
	rho        *memsim.Array // charge density (scatter target)
	jx, jy     *memsim.Array // current density (scatter targets)
	sm         *memsim.Array // smoothed density
	// acc is the 1-element accumulator of the energy reduction.
	acc *memsim.Array
}

// buildDataset allocates and initializes the arrays.
//
// Placement encodes the conflict structure that gives the fifteen loops
// their range of behaviours (per-loop speedups from ~0.9 to ~4.5 in the
// paper): congruence class 0 holds px, vx, ax, ay and t2, so the
// three-stream combine loop thrashes the 2-way caches while the two-stream
// pushes just fit; py/vy share class 64K; qw, t1 and ci sit in their own
// classes so the gather and deposit loops see conflict-free streams plus
// an essentially random gather.
func buildDataset(p Params) (*dataset, *memsim.Space) {
	s := memsim.NewSpace()
	n, g := p.Particles, p.Cells

	particle := func(name string, congruence int) *memsim.Array {
		return s.AllocAt(name, n, 8, congruence, congruenceModulus)
	}
	d := &dataset{
		px: particle("PX", 0),
		vx: particle("VX", 0),
		ax: particle("AX", 0),
		ay: particle("AY", 0),
		t2: particle("T2", 0),

		py: particle("PY", 64<<10),
		vy: particle("VY", 64<<10),

		qw: particle("QW", 128<<10),
		t1: particle("T1", 320<<10),
	}
	d.ci = s.AllocAt("CI", n, 4, 192<<10, congruenceModulus)

	grid := func(name string) *memsim.Array { return s.Alloc(name, g, 8, 4096) }
	d.ex = grid("EX")
	d.ey = grid("EY")
	d.bz = grid("BZ")
	d.phi = grid("PHI")
	d.rho = grid("RHO")
	d.jx = grid("JX")
	d.jy = grid("JY")
	d.sm = grid("SM")
	d.acc = s.Alloc("ACC", 1, 8, 8)

	rng := lcg(p.Seed | 1)
	fill := func(a *memsim.Array, lo, hi float64) {
		a.Fill(func(int) float64 { return lo + (hi-lo)*rng.unit() })
	}
	fill(d.px, 0, float64(g))
	fill(d.py, 0, float64(g))
	fill(d.vx, -1, 1)
	fill(d.vy, -1, 1)
	fill(d.qw, 0.5, 1.5)
	fill(d.ex, -2, 2)
	fill(d.ey, -2, 2)
	fill(d.bz, -1, 1)
	fill(d.phi, -10, 10)
	// Particle->cell assignment: wave5's particles are unsorted after a
	// few steps, so the gather pattern is essentially random over the
	// grid — the worst case for locality and the reason restructuring
	// pays (§2.1).
	d.ci.Fill(func(int) float64 { return float64(rng.intn(g)) })
	// ax, ay, t1, t2, rho, jx, jy, sm, acc start at zero (allocation
	// default), as the real mover recomputes them every call.
	return d, s
}
