package wave5

import (
	"fmt"

	"repro/internal/loopir"
	"repro/internal/memsim"
)

// NumLoops is the number of loops in PARMVR (the paper's Figure 3 x-axis).
const NumLoops = 15

// PARMVR is one built instance of the workload: fifteen loops sharing one
// dataset in one address space. Because later loops read what earlier
// loops write, the loops must be executed in order; a fresh instance is
// needed per measured configuration (Build is deterministic in Params, so
// instances are comparable).
type PARMVR struct {
	Params Params
	Space  *memsim.Space
	Loops  []*loopir.Loop

	data *dataset
}

// Build constructs the workload. The result is fully validated, including
// an O(iterations) bounds check of every reference.
func Build(p Params) (*PARMVR, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d, space := buildDataset(p)
	loops := buildLoops(d, p)
	if len(loops) != NumLoops {
		return nil, fmt.Errorf("wave5: built %d loops, want %d", len(loops), NumLoops)
	}
	for _, l := range loops {
		if err := l.Validate(); err != nil {
			return nil, err
		}
		if err := l.CheckBounds(); err != nil {
			return nil, err
		}
	}
	return &PARMVR{Params: p, Space: space, Loops: loops, data: d}, nil
}

// MustBuild is Build for known-good parameters.
func MustBuild(p Params) *PARMVR {
	w, err := Build(p)
	if err != nil {
		panic(err)
	}
	return w
}

// LoopNames returns the fifteen loop names in execution order.
func (w *PARMVR) LoopNames() []string {
	names := make([]string, len(w.Loops))
	for i, l := range w.Loops {
		names[i] = l.Name
	}
	return names
}

// FootprintBytes returns each loop's data footprint, the quantity the
// paper reports as "the amount of data accessed by each loop" (§3.1).
func (w *PARMVR) FootprintBytes() []int {
	out := make([]int, len(w.Loops))
	for i, l := range w.Loops {
		out[i] = l.FootprintBytes()
	}
	return out
}

// ParallelPhase builds the compiler-parallelizable loop that precedes
// PARMVR in the application (the "parallel section" of Figure 1): an
// embarrassingly parallel per-particle update with no cross-iteration
// dependences. Each call returns a fresh Loop value over the shared
// dataset; running it with cascade.RunParallel leaves each processor's
// caches holding the slice of particle data it produced.
func (w *PARMVR) ParallelPhase() *loopir.Loop {
	d := w.data
	l := &loopir.Loop{
		Name:  "parallel_update",
		Iters: w.Params.Particles,
		RO: []loopir.Ref{
			{Array: d.px, Index: loopir.Ident},
			{Array: d.py, Index: loopir.Ident},
		},
		Writes:      []loopir.Ref{{Array: d.t2, Index: loopir.Ident}},
		PreCycles:   6,
		FinalCycles: 2,
		NPre:        1,
		Pre: func(_ int, ro []float64) []float64 {
			return []float64{0.5*ro[0] + 0.3*ro[1]}
		},
		Final: func(_ int, pre, _ []float64) []float64 { return pre },
	}
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return l
}

// OutputSnapshot captures the values of every array any loop writes, for
// cross-strategy result comparison.
func (w *PARMVR) OutputSnapshot() map[string][]float64 {
	out := make(map[string][]float64)
	for _, l := range w.Loops {
		for _, wr := range l.Writes {
			if _, ok := out[wr.Array.Name()]; !ok {
				out[wr.Array.Name()] = wr.Array.Snapshot()
			}
		}
	}
	return out
}

// EqualOutputs compares a snapshot against current array values,
// returning the first differing array name, or "" if identical.
func (w *PARMVR) EqualOutputs(snap map[string][]float64) string {
	for _, l := range w.Loops {
		for _, wr := range l.Writes {
			want, ok := snap[wr.Array.Name()]
			if !ok {
				continue
			}
			if eq, _ := wr.Array.Equal(want); !eq {
				return wr.Array.Name()
			}
		}
	}
	return ""
}
