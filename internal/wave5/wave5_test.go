package wave5

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/machine"
)

// testParams is a small but structurally faithful dataset for tests.
func testParams() Params {
	return DefaultParams().Scaled(0.02) // ~14k particles, ~1k cells (min clamps)
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	if err := (Params{Particles: 10, Cells: 10}).Validate(); err == nil {
		t.Error("tiny params should fail validation")
	}
	if err := (Params{Particles: 100000, Cells: 10}).Validate(); err == nil {
		t.Error("tiny grid should fail validation")
	}
}

func TestScaledClamps(t *testing.T) {
	p := DefaultParams().Scaled(0.0001)
	if p.Particles < 8192 || p.Cells < 1024 {
		t.Errorf("Scaled went below clamps: %+v", p)
	}
	q := DefaultParams().Scaled(2)
	if q.Particles != 1_050_000 {
		t.Errorf("Scaled(2).Particles = %d", q.Particles)
	}
}

func TestBuildProducesFifteenValidLoops(t *testing.T) {
	w, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Loops) != NumLoops {
		t.Fatalf("got %d loops", len(w.Loops))
	}
	names := w.LoopNames()
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate loop name %q", n)
		}
		seen[n] = true
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	if _, err := Build(Params{Particles: 1, Cells: 1}); err == nil {
		t.Error("expected error")
	}
}

func TestBuildDeterministic(t *testing.T) {
	w1 := MustBuild(testParams())
	w2 := MustBuild(testParams())
	for i := range w1.Loops {
		a1 := w1.Loops[i].Arrays()
		a2 := w2.Loops[i].Arrays()
		if len(a1) != len(a2) {
			t.Fatalf("loop %d array counts differ", i)
		}
		for j := range a1 {
			if a1[j].Base() != a2[j].Base() || a1[j].Len() != a2[j].Len() {
				t.Errorf("loop %d array %d layout differs", i, j)
			}
			s1, s2 := a1[j].Snapshot(), a2[j].Snapshot()
			for k := range s1 {
				if s1[k] != s2[k] {
					t.Fatalf("loop %d array %s value %d differs", i, a1[j].Name(), k)
				}
			}
		}
	}
}

func TestFootprintRange(t *testing.T) {
	// At full scale, per-loop footprints must span the paper's enlarged
	// dataset range: smallest around 0.25 MB, largest above 10 MB (paper:
	// 256 KB to 17 MB).
	w := MustBuild(DefaultParams())
	fp := w.FootprintBytes()
	minFP, maxFP := fp[0], fp[0]
	for _, f := range fp {
		if f < minFP {
			minFP = f
		}
		if f > maxFP {
			maxFP = f
		}
	}
	if minFP > 512*1024 {
		t.Errorf("smallest loop footprint %d exceeds 512KB", minFP)
	}
	if maxFP < 10*1024*1024 {
		t.Errorf("largest loop footprint %d below 10MB", maxFP)
	}
	if maxFP > 20*1024*1024 {
		t.Errorf("largest loop footprint %d exceeds the paper's 17MB scale", maxFP)
	}
}

func TestConflictPlacement(t *testing.T) {
	w := MustBuild(testParams())
	// The class-0 arrays must share a congruence class mod 1MB.
	var bases []int64
	for _, l := range w.Loops {
		for _, a := range l.Arrays() {
			switch a.Name() {
			case "PX", "VX", "AX", "AY", "T2":
				bases = append(bases, int64(a.Base())%(1<<20))
			}
		}
	}
	if len(bases) == 0 {
		t.Fatal("no class-0 arrays found")
	}
	for _, b := range bases {
		if b != bases[0] {
			t.Errorf("class-0 congruences differ: %v", bases)
		}
	}
}

// TestPARMVRCascadedEquivalence runs the full 15-loop sequence under all
// three strategies and demands bitwise-identical outputs.
func TestPARMVRCascadedEquivalence(t *testing.T) {
	p := testParams()

	runAll := func(w *PARMVR, helper cascade.Helper, useCascade bool) {
		m := machine.MustNew(machine.PentiumPro(4))
		for _, l := range w.Loops {
			if useCascade {
				opts := cascade.DefaultOptions(helper, w.Space)
				opts.ChunkBytes = 16 * 1024
				cascade.MustRun(m, l, opts)
			} else {
				cascade.RunSequential(m, l, true)
			}
		}
	}

	ref := MustBuild(p)
	runAll(ref, 0, false)
	want := ref.OutputSnapshot()

	for _, h := range []cascade.Helper{cascade.HelperPrefetch, cascade.HelperRestructure} {
		w := MustBuild(p)
		runAll(w, h, true)
		if diff := w.EqualOutputs(want); diff != "" {
			t.Errorf("%v: array %s differs from sequential result", h, diff)
		}
	}
}

func TestEqualOutputsDetectsDifference(t *testing.T) {
	w := MustBuild(testParams())
	snap := w.OutputSnapshot()
	w.data.ax.Store(0, 12345)
	if diff := w.EqualOutputs(snap); diff != "AX" {
		t.Errorf("EqualOutputs = %q, want AX", diff)
	}
}

func TestLCGDeterminism(t *testing.T) {
	g1, g2 := lcg(7), lcg(7)
	for i := 0; i < 100; i++ {
		if g1.next() != g2.next() {
			t.Fatal("lcg not deterministic")
		}
	}
	g := lcg(3)
	for i := 0; i < 1000; i++ {
		u := g.unit()
		if u < 0 || u >= 1 {
			t.Fatalf("unit out of range: %v", u)
		}
		n := g.intn(17)
		if n < 0 || n >= 17 {
			t.Fatalf("intn out of range: %d", n)
		}
	}
}
