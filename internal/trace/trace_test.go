package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cascade"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Error("kind names")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := &Trace{}
	tr.Append(0x1000, 8, false)
	tr.Append(0x1008, 8, true)
	tr.Append(0x40, 4, false) // backwards delta
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 3 {
		t.Fatalf("records = %d", len(got.Records))
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{}
		n := rng.Intn(2000)
		for i := 0; i < n; i++ {
			tr.Append(memsim.Addr(rng.Intn(1<<30)), 1+rng.Intn(16), rng.Intn(2) == 0)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("hello world"),
		[]byte("CXTR01"),                     // truncated after magic
		append([]byte("CXTR01"), 0x05, 0x02), // count 5, truncated records
	}
	for i, c := range cases {
		if _, err := Decode(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCompactEncoding(t *testing.T) {
	// Sequential walk: deltas are tiny, so the on-disk form must be far
	// smaller than the naive 10 bytes/record.
	tr := &Trace{}
	for i := 0; i < 10000; i++ {
		tr.Append(memsim.Addr(0x10000+8*i), 8, false)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 4*10000 {
		t.Errorf("encoded size %d bytes for 10000 sequential records; expected <= 4/record", buf.Len())
	}
}

// naiveReuse computes line-granularity stack distances in O(n^2) as the
// reference implementation.
func naiveReuse(records []Record, lineSize int) (dists []int64, cold int64) {
	for i, r := range records {
		line := r.Addr.Line(lineSize)
		prev := -1
		for j := i - 1; j >= 0; j-- {
			if records[j].Addr.Line(lineSize) == line {
				prev = j
				break
			}
		}
		if prev < 0 {
			cold++
			continue
		}
		seen := map[memsim.Addr]struct{}{}
		for j := prev + 1; j < i; j++ {
			l := records[j].Addr.Line(lineSize)
			if l != line {
				seen[l] = struct{}{}
			}
		}
		dists = append(dists, int64(len(seen)))
	}
	return dists, cold
}

func TestReuseDistancesAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{}
		n := 50 + rng.Intn(300)
		for i := 0; i < n; i++ {
			tr.Append(memsim.Addr(rng.Intn(64)*32), 8, false)
		}
		h := tr.ReuseDistances(32)
		dists, cold := naiveReuse(tr.Records, 32)
		if h.Cold != cold || h.Total != int64(n) {
			return false
		}
		want := &ReuseHistogram{}
		for _, d := range dists {
			want.record(d)
		}
		if len(want.Buckets) != len(h.Buckets) {
			return false
		}
		for k := range want.Buckets {
			if want.Buckets[k] != h.Buckets[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReuseDistanceSequentialWalk(t *testing.T) {
	// A pure sequential walk revisits each line within-line (elements per
	// line - 1 times) at distance 0 and never again.
	tr := &Trace{}
	for i := 0; i < 1024; i++ {
		tr.Append(memsim.Addr(0x1000+8*i), 8, false)
	}
	h := tr.ReuseDistances(32)
	if h.Cold != 256 { // 1024 elems / 4 per line
		t.Errorf("cold = %d, want 256", h.Cold)
	}
	if len(h.Buckets) == 0 || h.Buckets[0] != 768 {
		t.Errorf("distance-0 count = %v, want 768", h.Buckets)
	}
}

func TestHitsUnderMatchesLRUSimulation(t *testing.T) {
	// HitsUnder(C) against the naive distances (validated against the
	// Fenwick implementation in TestReuseDistancesAgainstNaive): a
	// fully-associative LRU cache of capacity C hits exactly the accesses
	// with stack distance < C. Exact at bucket boundaries (C = 2^k - 1),
	// interpolated elsewhere.
	rng := rand.New(rand.NewSource(42))
	tr := &Trace{}
	for i := 0; i < 5000; i++ {
		tr.Append(memsim.Addr(rng.Intn(512)*32), 8, false)
	}
	h := tr.ReuseDistances(32)
	dists, _ := naiveReuse(tr.Records, 32)
	lruHits := func(capacity int) int64 {
		var want int64
		for _, d := range dists {
			if d < int64(capacity) {
				want++
			}
		}
		return want
	}
	for _, capacity := range []int{1, 3, 15, 63, 255} { // bucket boundaries
		if got, want := h.HitsUnder(capacity), lruHits(capacity); got != want {
			t.Errorf("HitsUnder(%d) = %d, want %d (exact boundary)", capacity, got, want)
		}
	}
	for _, capacity := range []int{10, 100, 256, 400} { // interpolated
		got, want := h.HitsUnder(capacity), lruHits(capacity)
		if diff := got - want; diff < -want/10 || diff > want/10 {
			t.Errorf("HitsUnder(%d) = %d, want ~%d (within 10%%)", capacity, got, want)
		}
	}
	if h.HitsUnder(0) != 0 {
		t.Error("HitsUnder(0) should be 0")
	}
}

func TestWorkingSet(t *testing.T) {
	tr := &Trace{}
	// Two windows: first touches 4 lines, second touches 2.
	for i := 0; i < 8; i++ {
		tr.Append(memsim.Addr(i%4*64), 8, false)
	}
	for i := 0; i < 8; i++ {
		tr.Append(memsim.Addr(i%2*64), 8, false)
	}
	ws := tr.WorkingSet(8, 64)
	if len(ws) != 2 || ws[0].Lines != 4 || ws[1].Lines != 2 {
		t.Errorf("working set = %+v", ws)
	}
	if ws[1].Start != 8 {
		t.Errorf("second window start = %d", ws[1].Start)
	}
}

func TestWorkingSetPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(&Trace{}).WorkingSet(0, 32)
}

func TestFootprint(t *testing.T) {
	tr := &Trace{}
	tr.Append(0x0, 8, false)
	tr.Append(0x8, 8, false) // same line
	tr.Append(0x40, 4, true) // new line
	lines, bytes := tr.Footprint(32)
	if lines != 2 || bytes != 20 {
		t.Errorf("footprint = %d lines, %d bytes", lines, bytes)
	}
}

// TestRecordAndReplayAgree: a trace recorded from a uniprocessor run
// replays through the same configuration with identical demand statistics
// and cycles (no compiler prefetch, so the replay is exact).
func TestRecordAndReplayAgree(t *testing.T) {
	const n = 4096
	s := memsim.NewSpace()
	a := s.Alloc("A", n, 8, 8)
	c := s.Alloc("C", n, 8, 8)
	a.Fill(func(i int) float64 { return float64(i) })
	l := &loopir.Loop{
		Name:   "walk",
		Iters:  n,
		RO:     []loopir.Ref{{Array: a, Index: loopir.Ident}},
		Writes: []loopir.Ref{{Array: c, Index: loopir.Ident}},
		Final:  func(_ int, pre, _ []float64) []float64 { return pre },
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}

	cfg := machine.PentiumPro(1)
	m := machine.MustNew(cfg)
	tr := &Trace{}
	m.Proc(0).SetObserver(tr.Observer())
	orig := cascade.RunSequential(m, l, false)
	m.Proc(0).SetObserver(nil)

	if tr.Len() == 0 {
		t.Fatal("no records captured")
	}
	rep, err := Replay(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.L1.Misses != orig.L1.Misses || rep.L2.Misses != orig.L2.Misses {
		t.Errorf("replay misses L1=%d/L2=%d, original L1=%d/L2=%d",
			rep.L1.Misses, rep.L2.Misses, orig.L1.Misses, orig.L2.Misses)
	}
	if rep.Accesses != int64(tr.Len()) {
		t.Errorf("accesses = %d, want %d", rep.Accesses, tr.Len())
	}
}

// TestReplayAcrossConfigurations: the same trace replayed through a
// bigger cache misses less.
func TestReplayAcrossConfigurations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := &Trace{}
	for i := 0; i < 20000; i++ {
		tr.Append(memsim.Addr(rng.Intn(64*1024)), 8, rng.Intn(4) == 0)
	}
	small, err := Replay(tr, machine.PentiumPro(1))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Replay(tr, machine.R10000(1))
	if err != nil {
		t.Fatal(err)
	}
	if big.L1.Misses >= small.L1.Misses {
		t.Errorf("32KB L1 (%d misses) should beat 8KB L1 (%d misses) on a 64KB working set",
			big.L1.Misses, small.L1.Misses)
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(10)
	f.add(0, 5)
	f.add(3, 2)
	f.add(9, 1)
	if got := f.prefix(9); got != 8 {
		t.Errorf("prefix(9) = %d", got)
	}
	if got := f.sumRange(1, 3); got != 2 {
		t.Errorf("sumRange(1,3) = %d", got)
	}
	if got := f.sumRange(5, 3); got != 0 {
		t.Errorf("empty range = %d", got)
	}
	f.add(3, -2)
	if got := f.sumRange(0, 9); got != 6 {
		t.Errorf("after removal = %d", got)
	}
}
