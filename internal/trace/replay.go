package trace

import (
	"repro/internal/cache"
	"repro/internal/machine"
)

// ReplayResult reports a trace replay through a cache hierarchy.
type ReplayResult struct {
	Accesses int64
	Cycles   int64
	L1, L2   cache.Stats
}

// Replay runs the trace through a fresh single-processor instance of the
// machine configuration and returns timing and per-level statistics. The
// replay is demand-only: compiler prefetching needs stride knowledge that
// a flat trace does not carry, so replayed cycle counts are an upper
// bound for prefetching machines and exact for the others.
func Replay(t *Trace, cfg machine.Config) (ReplayResult, error) {
	m, err := machine.New(cfg.WithProcs(1))
	if err != nil {
		return ReplayResult{}, err
	}
	p := m.Proc(0)
	var res ReplayResult
	for _, r := range t.Records {
		out := p.Access(r.Addr, int(r.Size), r.Kind == Write)
		res.Cycles += out.Cycles
		res.Accesses++
	}
	res.L1 = m.L1Stats()
	res.L2 = m.L2Stats()
	return res, nil
}
