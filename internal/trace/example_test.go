package trace_test

import (
	"fmt"

	"repro/internal/cascade"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/trace"
)

// Example records a loop's address trace, analyzes its reuse behaviour,
// and replays it through the other machine's caches.
func Example() {
	const n = 4096
	space := memsim.NewSpace()
	a := space.Alloc("A", n, 8, 8)
	c := space.Alloc("C", n, 8, 8)
	a.Fill(func(i int) float64 { return float64(i) })
	loop := &loopir.Loop{
		Name:   "walk",
		Iters:  n,
		RO:     []loopir.Ref{{Array: a, Index: loopir.Ident}},
		Writes: []loopir.Ref{{Array: c, Index: loopir.Ident}},
		Final:  func(_ int, pre, _ []float64) []float64 { return pre },
	}
	if err := loop.Validate(); err != nil {
		panic(err)
	}

	// Record from a Pentium Pro run.
	m := machine.MustNew(machine.PentiumPro(1))
	tr := &trace.Trace{}
	m.Proc(0).SetObserver(tr.Observer())
	cascade.RunSequential(m, loop, false)

	lines, _ := tr.Footprint(32)
	fmt.Println("accesses:", tr.Len())
	fmt.Println("distinct lines:", lines)

	// Replay through the R10000's hierarchy.
	rep, err := trace.Replay(tr, machine.R10000(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("R10000 L1 misses fewer:", rep.L1.Misses < int64(tr.Len())/2)
	// Output:
	// accesses: 8192
	// distinct lines: 2048
	// R10000 L1 misses fewer: true
}
