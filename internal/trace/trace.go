// Package trace records, serializes, replays and analyzes address traces
// of simulated loop executions.
//
// Traces serve two purposes in this repository. First, they decouple
// workload capture from cache evaluation: a trace recorded once can be
// replayed through any machine configuration, which is how cache-design
// questions (associativity, line size, TLBs) are explored without
// re-running the interpreter. Second, the analyses — reuse-distance
// histograms and working-set curves — explain *why* the paper's loops
// behave as they do: a loop whose reuse distances exceed the L1's line
// count must miss, and restructuring works precisely by collapsing the
// execution phase's reuse distances to ~1.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/machine"
	"repro/internal/memsim"
)

// Kind distinguishes access types.
type Kind uint8

const (
	// Read is a demand load.
	Read Kind = iota
	// Write is a demand store.
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one access.
type Record struct {
	Addr memsim.Addr
	Size uint8
	Kind Kind
}

// Trace is an in-memory access sequence.
type Trace struct {
	Records []Record
}

// Append adds a record.
func (t *Trace) Append(addr memsim.Addr, size int, write bool) {
	k := Read
	if write {
		k = Write
	}
	t.Records = append(t.Records, Record{Addr: addr, Size: uint8(size), Kind: k})
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Observer returns a machine.AccessObserver that appends to the trace;
// install it with Processor.SetObserver to capture a processor's
// reference stream.
func (t *Trace) Observer() machine.AccessObserver {
	return func(addr memsim.Addr, size int, write bool) {
		t.Append(addr, size, write)
	}
}

// magic identifies the binary trace format, version 1.
var magic = [6]byte{'C', 'X', 'T', 'R', '0', '1'}

// WriteTo serializes the trace. The format is: magic, uvarint record
// count, then per record a zigzag-varint address delta from the previous
// address, one size byte, one kind byte. Address deltas make loop traces
// highly compressible and keep typical records at 3-4 bytes.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.Write(magic[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(len(t.Records)))
	n, err = bw.Write(buf[:k])
	written += int64(n)
	if err != nil {
		return written, err
	}
	prev := int64(0)
	for _, r := range t.Records {
		delta := int64(r.Addr) - prev
		prev = int64(r.Addr)
		k := binary.PutVarint(buf[:], delta)
		buf[k] = byte(r.Size)
		buf[k+1] = byte(r.Kind)
		n, err = bw.Write(buf[:k+2])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// Decode deserializes a trace written by WriteTo.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [6]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: not a CXTR01 trace file")
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxRecords = 1 << 31
	if count > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	t := &Trace{Records: make([]Record, 0, count)}
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d address: %w", i, err)
		}
		prev += delta
		if prev < 0 {
			return nil, fmt.Errorf("trace: record %d has negative address", i)
		}
		size, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d size: %w", i, err)
		}
		if size == 0 {
			return nil, fmt.Errorf("trace: record %d has zero size", i)
		}
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d kind: %w", i, err)
		}
		if Kind(kind) != Read && Kind(kind) != Write {
			return nil, fmt.Errorf("trace: record %d has kind %d", i, kind)
		}
		t.Records = append(t.Records, Record{
			Addr: memsim.Addr(prev),
			Size: size,
			Kind: Kind(kind),
		})
	}
	return t, nil
}
