package trace

import (
	"repro/internal/memsim"
)

// ReuseHistogram is a histogram of line-granularity LRU stack distances:
// Buckets[k] counts accesses whose reuse distance d satisfies
// 2^k <= d+1 < 2^(k+1) (so Buckets[0] counts immediate re-references),
// and Cold counts first-ever references. A fully-associative LRU cache of
// C lines hits exactly the accesses with d < C, which makes the histogram
// the machine-independent explanation of cache behaviour.
type ReuseHistogram struct {
	Buckets []int64
	Cold    int64
	Total   int64
}

// HitsUnder returns how many accesses have reuse distance strictly less
// than capacity lines — the hit count of a fully-associative LRU cache of
// that size. It is exact when capacity+1 is a power of two (a bucket
// boundary) and linearly interpolated inside a bucket otherwise.
func (h *ReuseHistogram) HitsUnder(capacityLines int) int64 {
	if capacityLines <= 0 {
		return 0
	}
	var hits int64
	lo := int64(1)
	for k, n := range h.Buckets {
		_ = k
		hi := lo * 2 // bucket covers d+1 in [lo, hi)
		switch {
		case int64(capacityLines) >= hi-1+1:
			hits += n
		case int64(capacityLines)+1 > lo:
			span := hi - lo
			frac := int64(capacityLines) + 1 - lo
			hits += n * frac / span
		}
		lo = hi
	}
	return hits
}

// ReuseDistances computes the LRU stack-distance histogram of the trace
// at the given line granularity, using the Fenwick-tree formulation of
// Mattson's algorithm: each access marks its position "live"; the reuse
// distance of a re-reference is the number of live marks after the line's
// previous position, which is then cleared. O(n log n).
func (t *Trace) ReuseDistances(lineSize int) *ReuseHistogram {
	n := len(t.Records)
	fen := newFenwick(n)
	last := make(map[memsim.Addr]int, 1024)
	h := &ReuseHistogram{}
	for i, r := range t.Records {
		line := r.Addr.Line(lineSize)
		if prev, ok := last[line]; ok {
			// Distinct lines touched strictly after prev.
			d := fen.sumRange(prev+1, i-1)
			h.record(d)
			fen.add(prev, -1)
		} else {
			h.Cold++
		}
		fen.add(i, 1)
		last[line] = i
		h.Total++
	}
	return h
}

// record buckets one reuse distance.
func (h *ReuseHistogram) record(d int64) {
	k := 0
	for v := d + 1; v > 1; v >>= 1 {
		k++
	}
	for len(h.Buckets) <= k {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[k]++
}

// fenwick is a 1-indexed binary indexed tree over trace positions.
type fenwick struct {
	tree []int64
}

func newFenwick(n int) *fenwick {
	return &fenwick{tree: make([]int64, n+1)}
}

// add adds v at 0-based position i.
func (f *fenwick) add(i int, v int64) {
	for j := i + 1; j < len(f.tree); j += j & -j {
		f.tree[j] += v
	}
}

// prefix returns the sum of positions [0, i] (0-based, inclusive).
func (f *fenwick) prefix(i int) int64 {
	var s int64
	for j := i + 1; j > 0; j -= j & -j {
		s += f.tree[j]
	}
	return s
}

// sumRange returns the sum over 0-based positions [lo, hi]; empty ranges
// yield 0.
func (f *fenwick) sumRange(lo, hi int) int64 {
	if lo > hi {
		return 0
	}
	s := f.prefix(hi)
	if lo > 0 {
		s -= f.prefix(lo - 1)
	}
	return s
}

// WorkingSetPoint is one window of the working-set curve.
type WorkingSetPoint struct {
	Start int // record index of the window start
	Lines int // distinct lines touched in the window
}

// WorkingSet slices the trace into consecutive windows of windowAccesses
// records and reports the number of distinct lines each touches — the
// classic working-set curve, and the quantity the paper's chunker tries
// to keep under the cache size.
func (t *Trace) WorkingSet(windowAccesses, lineSize int) []WorkingSetPoint {
	if windowAccesses <= 0 {
		panic("trace: WorkingSet window must be positive")
	}
	var out []WorkingSetPoint
	seen := make(map[memsim.Addr]struct{}, windowAccesses)
	start := 0
	flush := func(end int) {
		if end > start {
			out = append(out, WorkingSetPoint{Start: start, Lines: len(seen)})
		}
	}
	for i, r := range t.Records {
		if i-start == windowAccesses {
			flush(i)
			start = i
			seen = make(map[memsim.Addr]struct{}, windowAccesses)
		}
		seen[r.Addr.Line(lineSize)] = struct{}{}
	}
	flush(len(t.Records))
	return out
}

// Footprint returns the total number of distinct lines the trace touches
// and the total bytes accessed.
func (t *Trace) Footprint(lineSize int) (lines int, bytes int64) {
	seen := make(map[memsim.Addr]struct{}, 1024)
	for _, r := range t.Records {
		seen[r.Addr.Line(lineSize)] = struct{}{}
		bytes += int64(r.Size)
	}
	return len(seen), bytes
}
