package metrics

import (
	"sync"
	"testing"
)

// TestSyncedConcurrentCounters pins the whole point of Synced: many
// goroutines hammering the same counters race-free (run under -race) and
// no increment is lost.
func TestSyncedConcurrentCounters(t *testing.T) {
	s := NewSynced()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Inc("jobs.submitted")
				s.Add("cache.hits", 2)
				s.Set("queue.depth", int64(g))
				s.Max("queue.peak", int64(i))
			}
		}(g)
	}
	wg.Wait()
	snap := s.Snapshot()
	if got := snap.Get("jobs.submitted"); got != goroutines*perG {
		t.Errorf("jobs.submitted = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Get("cache.hits"); got != 2*goroutines*perG {
		t.Errorf("cache.hits = %d, want %d", got, 2*goroutines*perG)
	}
	if got := snap.Get("queue.peak"); got != perG-1 {
		t.Errorf("queue.peak = %d, want %d", got, perG-1)
	}
}

// TestSyncedWithAndReset exercises the escape hatch and the reset path.
func TestSyncedWithAndReset(t *testing.T) {
	s := NewSynced()
	s.With(func(r *Registry) {
		r.PhaseTimer("jobs.time", "queued", "run").Add(0, "run", 42)
	})
	if got := s.Value("jobs.time.total.run"); got != 42 {
		t.Errorf("jobs.time.total.run = %d, want 42", got)
	}
	s.Inc("n")
	s.ResetStats()
	if !s.Snapshot().AllZero() {
		t.Errorf("after ResetStats, snapshot not all zero: %v", s.Snapshot().NonZero())
	}
}
