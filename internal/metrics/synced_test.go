package metrics

import (
	"math/rand"
	"reflect"
	"strconv"
	"sync"
	"testing"
)

// TestSyncedConcurrentCounters pins the whole point of Synced: many
// goroutines hammering the same counters race-free (run under -race) and
// no increment is lost.
func TestSyncedConcurrentCounters(t *testing.T) {
	s := NewSynced()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Inc("jobs.submitted")
				s.Add("cache.hits", 2)
				s.Set("queue.depth", int64(g))
				s.Max("queue.peak", int64(i))
			}
		}(g)
	}
	wg.Wait()
	snap := s.Snapshot()
	if got := snap.Get("jobs.submitted"); got != goroutines*perG {
		t.Errorf("jobs.submitted = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Get("cache.hits"); got != 2*goroutines*perG {
		t.Errorf("cache.hits = %d, want %d", got, 2*goroutines*perG)
	}
	if got := snap.Get("queue.peak"); got != perG-1 {
		t.Errorf("queue.peak = %d, want %d", got, perG-1)
	}
}

// TestSyncedWithAndReset exercises the escape hatch and the reset path.
func TestSyncedWithAndReset(t *testing.T) {
	s := NewSynced()
	s.With(func(r *Registry) {
		r.PhaseTimer("jobs.time", "queued", "run").Add(0, "run", 42)
	})
	if got := s.Value("jobs.time.total.run"); got != 42 {
		t.Errorf("jobs.time.total.run = %d, want 42", got)
	}
	s.Inc("n")
	s.ResetStats()
	if !s.Snapshot().AllZero() {
		t.Errorf("after ResetStats, snapshot not all zero: %v", s.Snapshot().NonZero())
	}
}

// TestSyncedShardedDifferential is the sharding refactor's contract: a
// single-goroutine operation sequence applied to both the sharded Synced
// and a plain Registry must yield identical snapshots at every probe
// point — shard striping may spread a counter across registries, but it
// must never be observable.
func TestSyncedShardedDifferential(t *testing.T) {
	s := NewSynced()
	r := NewRegistry()
	check := func(step string) {
		t.Helper()
		got, want := s.Snapshot(), r.Snapshot()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("after %s: sharded snapshot diverges\nsharded %v\nplain   %v", step, got, want)
		}
	}
	rng := rand.New(rand.NewSource(42))
	counters := []string{"jobs.submitted", "jobs.completed", "cache.hits", "cache.bytes"}
	gauges := []string{"queue.depth", "queue.depth_peak"}
	for i := 0; i < 400; i++ {
		switch rng.Intn(5) {
		case 0:
			n := counters[rng.Intn(len(counters))]
			s.Inc(n)
			r.Counter(n).Inc()
		case 1:
			n, d := counters[rng.Intn(len(counters))], int64(rng.Intn(100))
			s.Add(n, d)
			r.Counter(n).Add(d)
		case 2:
			n, v := gauges[rng.Intn(len(gauges))], int64(rng.Intn(50))
			s.Set(n, v)
			r.Gauge(n).Set(v)
		case 3:
			n, v := gauges[rng.Intn(len(gauges))], int64(rng.Intn(200))
			s.Max(n, v)
			r.Gauge(n).Max(v)
		case 4:
			if rng.Intn(8) == 0 {
				s.ResetStats()
				r.ResetStats()
			}
		}
		if i%37 == 0 {
			check("op " + strconv.Itoa(i))
		}
	}
	check("final")
	for _, n := range counters {
		if s.Value(n) != r.Snapshot().Get(n) {
			t.Errorf("Value(%s) = %d, plain %d", n, s.Value(n), r.Snapshot().Get(n))
		}
	}
}

// TestSyncedSnapshotAtomicCut: Snapshot holds every shard at once, so a
// scrape taken while writers bump two counters back-to-back under their
// own coordination still sees the registry as a consistent whole — the
// sum over all shards never double-counts or drops an increment that the
// probe's own lock acquisition ordered before it.
func TestSyncedSnapshotAtomicCut(t *testing.T) {
	s := NewSynced()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Inc("a")
				}
			}
		}()
	}
	last := int64(-1)
	for i := 0; i < 200; i++ {
		v := s.Snapshot().Get("a")
		if v < last {
			t.Fatalf("counter went backwards across snapshots: %d then %d", last, v)
		}
		last = v
	}
	close(stop)
	wg.Wait()
	if final := s.Value("a"); final < last {
		t.Errorf("final value %d below last observed snapshot %d", final, last)
	}
}
