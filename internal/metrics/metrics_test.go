package metrics

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestCounterGaugeRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Max(7)
	g.Max(2)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
	s := r.Snapshot()
	if s.Get("events") != 5 || s.Get("depth") != 7 {
		t.Errorf("snapshot = %v", s)
	}
	// Second lookup returns the same instance.
	if r.Counter("events") != c || r.Gauge("depth") != g {
		t.Error("lookup did not return the registered instance")
	}
	r.ResetStats()
	if !r.Snapshot().AllZero() {
		t.Errorf("after reset: %v", r.Snapshot())
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Register("x", &Counter{})
}

func TestCounterNameCollisionAcrossKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("Gauge over a Counter name did not panic")
		}
	}()
	r.Gauge("x")
}

func TestPhaseTimer(t *testing.T) {
	r := NewRegistry()
	pt := r.PhaseTimer("cascade", "helper", "exec")
	pt.Add(0, "exec", 100)
	pt.Add(2, "helper", 30)
	pt.Add(2, "helper", 12)
	if got := pt.Cycles(2, "helper"); got != 42 {
		t.Errorf("Cycles(2, helper) = %d, want 42", got)
	}
	if got := pt.Total("exec"); got != 100 {
		t.Errorf("Total(exec) = %d, want 100", got)
	}
	if pt.Procs() != 3 {
		t.Errorf("Procs = %d, want 3", pt.Procs())
	}
	s := r.Snapshot()
	want := Snapshot{
		"cascade.p0.helper": 0, "cascade.p0.exec": 100,
		"cascade.p1.helper": 0, "cascade.p1.exec": 0,
		"cascade.p2.helper": 42, "cascade.p2.exec": 0,
		"cascade.total.helper": 42, "cascade.total.exec": 100,
	}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("snapshot = %v, want %v", s, want)
	}
	// Re-fetch with the same phases is the same timer; different phases panic.
	if r.PhaseTimer("cascade", "helper", "exec") != pt {
		t.Error("re-fetch returned a different timer")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("phase-set mismatch did not panic")
			}
		}()
		r.PhaseTimer("cascade", "helper")
	}()
	r.ResetStats()
	if pt.Procs() != 3 {
		t.Error("reset must keep the processor set")
	}
	if !r.Snapshot().AllZero() {
		t.Errorf("after reset: %v", r.Snapshot())
	}
}

func TestPhaseTimerUnknownPhasePanics(t *testing.T) {
	pt := NewRegistry().PhaseTimer("t", "a")
	defer func() {
		if recover() == nil {
			t.Error("unknown phase did not panic")
		}
	}()
	pt.Add(0, "b", 1)
}

func TestSnapshotDiffMerge(t *testing.T) {
	a := Snapshot{"x": 10, "y": 3}
	b := Snapshot{"x": 4, "y": 3, "gone": 9}
	d := a.Diff(b)
	if !reflect.DeepEqual(d, Snapshot{"x": 6, "y": 0}) {
		t.Errorf("diff = %v", d)
	}
	m := a.Merge(Snapshot{"x": 1, "z": 2})
	if !reflect.DeepEqual(m, Snapshot{"x": 11, "y": 3, "z": 2}) {
		t.Errorf("merge = %v", m)
	}
	mm := Merge(a, a, Snapshot{"w": 1})
	if !reflect.DeepEqual(mm, Snapshot{"x": 20, "y": 6, "w": 1}) {
		t.Errorf("Merge = %v", mm)
	}
	nz := d.NonZero()
	if !reflect.DeepEqual(nz, Snapshot{"x": 6}) {
		t.Errorf("NonZero = %v", nz)
	}
}

func TestSnapshotNamesSortedAndJSONDeterministic(t *testing.T) {
	s := Snapshot{"b.z": 1, "a": 2, "b.a": 3}
	if !reflect.DeepEqual(s.Names(), []string{"a", "b.a", "b.z"}) {
		t.Errorf("Names = %v", s.Names())
	}
	j1, _ := json.Marshal(s)
	j2, _ := json.Marshal(s)
	if string(j1) != string(j2) || string(j1) != `{"a":2,"b.a":3,"b.z":1}` {
		t.Errorf("JSON = %s", j1)
	}
}

func TestSnapshotWithPrefix(t *testing.T) {
	s := Snapshot{"cascade.p0.exec": 5, "cascade.p1.exec": 7, "bus.writebacks": 1, "cascade": 2, "cascadex.y": 3}
	got := s.WithPrefix("cascade")
	want := Snapshot{"p0.exec": 5, "p1.exec": 7, "": 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WithPrefix = %v, want %v", got, want)
	}
}

func TestRegion(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Add(100) // warm-up traffic
	region := r.Begin()
	c.Add(7)
	got := region.End()
	if got.Get("hits") != 7 {
		t.Errorf("region delta = %v, want hits=7", got)
	}
	// The region is reusable: End reports the delta since Begin.
	c.Add(3)
	if region.End().Get("hits") != 10 {
		t.Errorf("second End = %v", region.End())
	}
}

// fakeSource checks that registered sources are driven through the one
// reset path and prefixed correctly.
type fakeSource struct {
	n     int64
	reset int
}

func (f *fakeSource) EmitMetrics(emit func(string, int64)) {
	emit("n", f.n)
}
func (f *fakeSource) ResetStats() { f.reset++; f.n = 0 }

func TestRegistrySources(t *testing.T) {
	r := NewRegistry()
	f := &fakeSource{n: 9}
	r.Register("p0.l1", f)
	if got := r.Snapshot().Get("p0.l1.n"); got != 9 {
		t.Errorf("snapshot = %v", r.Snapshot())
	}
	r.ResetStats()
	if f.reset != 1 || f.n != 0 {
		t.Errorf("source not reset: %+v", f)
	}
}
