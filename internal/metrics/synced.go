package metrics

import "sync"

// Synced wraps a Registry with a mutex for concurrent producers. A
// simulated machine's registry is single-goroutine by design (see the
// package comment), but the serving layer's registry is written from many
// goroutines at once — HTTP handlers, queue workers, the cache — so it
// goes through this wrapper instead. Names follow the same dotted
// convention; metrics are created on first use.
type Synced struct {
	mu sync.Mutex
	r  *Registry
}

// NewSynced returns an empty concurrent-safe registry.
func NewSynced() *Synced {
	return &Synced{r: NewRegistry()}
}

// Add increases the named counter by d, creating it on first use.
func (s *Synced) Add(name string, d int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.Counter(name).Add(d)
}

// Inc increases the named counter by one, creating it on first use.
func (s *Synced) Inc(name string) { s.Add(name, 1) }

// Set records the named gauge's current value, creating it on first use.
func (s *Synced) Set(name string, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.Gauge(name).Set(v)
}

// Max raises the named gauge to v if v is larger (high-water-mark use).
func (s *Synced) Max(name string, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.Gauge(name).Max(v)
}

// Value returns the named metric's current value from a fresh snapshot
// (0 when the metric does not exist yet).
func (s *Synced) Value(name string) int64 {
	return s.Snapshot().Get(name)
}

// Snapshot captures the current value of every metric, like
// Registry.Snapshot but safe against concurrent writers.
func (s *Synced) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Snapshot()
}

// ResetStats zeroes every metric, like Registry.ResetStats.
func (s *Synced) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.ResetStats()
}

// With runs f with the underlying registry under the lock, for operations
// the convenience methods don't cover (phase timers, bulk registration).
// f must not retain the registry or any metric handle past its return.
func (s *Synced) With(f func(r *Registry)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(s.r)
}
