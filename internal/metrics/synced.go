package metrics

import (
	"sync"
	"sync/atomic"
)

// Synced is a concurrent-safe registry for the serving layer. A simulated
// machine's registry is single-goroutine by design (see the package
// comment), but the serving layer's registry is written from many
// goroutines at once — HTTP handlers, queue workers, the cache — so it
// goes through this wrapper instead. Names follow the same dotted
// convention; metrics are created on first use.
//
// Internally writes are striped over a small fixed set of locked shards
// so that concurrent producers do not serialize on one global mutex. A
// counter may accumulate on several shards at once; Snapshot locks every
// shard (in index order, so concurrent snapshots cannot deadlock) and
// sums pointwise, which is exactly the single-registry total. Gauges
// (Set/Max) and the With escape hatch always use shard 0, so last-write
// and high-water-mark semantics stay exact. A name must be used
// consistently as either a counter or a gauge, as before.
type Synced struct {
	next   atomic.Uint64
	shards [syncedShards]syncedShard
}

// syncedShards is deliberately small: enough stripes to take the serving
// layer's handful of hot producers off one lock, few enough that the
// all-shard Snapshot scrape stays cheap.
const syncedShards = 8

type syncedShard struct {
	mu sync.Mutex
	r  *Registry
	_  [40]byte // pad to a cache line so shard locks don't false-share
}

// NewSynced returns an empty concurrent-safe registry.
func NewSynced() *Synced {
	s := &Synced{}
	for i := range s.shards {
		s.shards[i].r = NewRegistry()
	}
	return s
}

// shard picks the stripe for one counter update. Round-robin rather than
// name-hashed: a single hot counter (every job bumps jobs.submitted)
// still spreads across all stripes.
func (s *Synced) shard() *syncedShard {
	return &s.shards[s.next.Add(1)%syncedShards]
}

// Add increases the named counter by d, creating it on first use.
func (s *Synced) Add(name string, d int64) {
	sh := s.shard()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.r.Counter(name).Add(d)
}

// Inc increases the named counter by one, creating it on first use.
func (s *Synced) Inc(name string) { s.Add(name, 1) }

// Set records the named gauge's current value, creating it on first use.
func (s *Synced) Set(name string, v int64) {
	sh := &s.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.r.Gauge(name).Set(v)
}

// Max raises the named gauge to v if v is larger (high-water-mark use).
func (s *Synced) Max(name string, v int64) {
	sh := &s.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.r.Gauge(name).Max(v)
}

// Value returns the named metric's current value from a fresh snapshot
// (0 when the metric does not exist yet).
func (s *Synced) Value(name string) int64 {
	return s.Snapshot().Get(name)
}

// Snapshot captures the current value of every metric, like
// Registry.Snapshot but safe against concurrent writers. All shards are
// locked together, so the result is a single point-in-time cut — the
// same atomicity the one-mutex wrapper gave.
func (s *Synced) Snapshot() Snapshot {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	out := make(Snapshot)
	for i := range s.shards {
		for n, v := range s.shards[i].r.Snapshot() {
			out[n] += v
		}
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	return out
}

// ResetStats zeroes every metric, like Registry.ResetStats. Like
// Snapshot, it holds every shard at once: no concurrent increment is
// half-reset.
func (s *Synced) ResetStats() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	for i := range s.shards {
		s.shards[i].r.ResetStats()
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

// With runs f with shard 0's registry under its lock, for operations the
// convenience methods don't cover (phase timers, bulk registration).
// f must not retain the registry or any metric handle past its return.
func (s *Synced) With(f func(r *Registry)) {
	sh := &s.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f(sh.r)
}
