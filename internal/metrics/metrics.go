// Package metrics is the simulator's unified observability layer: a
// lightweight registry of named counters, gauges, and simulated-time phase
// timers with snapshot/diff/reset semantics.
//
// Every stat-bearing component (cache levels, TLBs, victim buffers, the
// coherence bus, the cascade timeline) registers itself as a Source under a
// stable dotted name. A measured region is then a first-class concept:
// snapshot the registry, run the region, and Diff the two snapshots — or
// reset the whole registry through one call. Because components are
// enumerated once, at registration, a counter can no longer be zeroed by
// Reset but missed by ResetStats (the victim-buffer leak class this package
// was built to eliminate).
//
// The registry is deliberately not safe for concurrent use: a registry
// belongs to one simulated machine, and a machine is driven by one
// goroutine (experiment sweeps parallelize across machines, never within
// one).
package metrics

import (
	"fmt"
	"sort"
)

// Source is a component that owns event counters. EmitMetrics reports every
// counter the component maintains under a component-local name; ResetStats
// zeroes exactly that set. Implementations must emit the same names on
// every call (zeros included), so snapshots have a stable shape.
//
// The emit callback uses an unnamed func type so that components can
// implement Source structurally, without importing this package.
type Source interface {
	EmitMetrics(emit func(name string, value int64))
	ResetStats()
}

// Registry holds named Sources and hands out ad-hoc counters, gauges, and
// phase timers. Registration order is preserved; snapshot names are
// "<registered-name>.<emitted-name>".
type Registry struct {
	entries []entry
	byName  map[string]Source
}

type entry struct {
	name string
	src  Source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Source)}
}

// Register adds src under name. It panics on an empty or duplicate name:
// metric names are part of a machine's construction, so a collision is a
// programming error.
func (r *Registry) Register(name string, src Source) {
	if name == "" {
		panic("metrics: Register with empty name")
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.byName[name] = src
	r.entries = append(r.entries, entry{name, src})
}

// lookup returns the source registered under name, or nil.
func (r *Registry) lookup(name string) Source {
	return r.byName[name]
}

// Counter returns the counter registered under name, creating and
// registering it on first use. It panics if name is taken by a non-counter.
func (r *Registry) Counter(name string) *Counter {
	if src := r.lookup(name); src != nil {
		c, ok := src.(*Counter)
		if !ok {
			panic(fmt.Sprintf("metrics: %q is not a Counter", name))
		}
		return c
	}
	c := &Counter{}
	r.Register(name, c)
	return c
}

// Gauge returns the gauge registered under name, creating and registering
// it on first use. It panics if name is taken by a non-gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if src := r.lookup(name); src != nil {
		g, ok := src.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("metrics: %q is not a Gauge", name))
		}
		return g
	}
	g := &Gauge{}
	r.Register(name, g)
	return g
}

// PhaseTimer returns the phase timer registered under name, creating and
// registering it on first use. The phase set is fixed at creation; asking
// for an existing timer with a different phase set panics.
func (r *Registry) PhaseTimer(name string, phases ...string) *PhaseTimer {
	if src := r.lookup(name); src != nil {
		t, ok := src.(*PhaseTimer)
		if !ok {
			panic(fmt.Sprintf("metrics: %q is not a PhaseTimer", name))
		}
		if len(t.phases) != len(phases) {
			panic(fmt.Sprintf("metrics: PhaseTimer %q phase mismatch", name))
		}
		for i := range phases {
			if t.phases[i] != phases[i] {
				panic(fmt.Sprintf("metrics: PhaseTimer %q phase mismatch", name))
			}
		}
		return t
	}
	if len(phases) == 0 {
		panic(fmt.Sprintf("metrics: PhaseTimer %q needs at least one phase", name))
	}
	t := &PhaseTimer{phases: append([]string(nil), phases...)}
	r.Register(name, t)
	return t
}

// Snapshot captures the current value of every registered metric. The
// returned map is independent of the registry; taking a snapshot never
// disturbs counters.
func (r *Registry) Snapshot() Snapshot {
	s := make(Snapshot)
	for _, e := range r.entries {
		prefix := e.name
		e.src.EmitMetrics(func(name string, value int64) {
			if name != "" {
				s[prefix+"."+name] = value
			} else {
				s[prefix] = value
			}
		})
	}
	return s
}

// ResetStats zeroes every registered source. This is the single reset path
// a simulated machine's warm-up/measured-region boundary goes through.
func (r *Registry) ResetStats() {
	for _, e := range r.entries {
		e.src.ResetStats()
	}
}

// Begin opens a measured region: the returned Region remembers the current
// snapshot, and End reports only what happened in between.
func (r *Registry) Begin() *Region {
	return &Region{reg: r, base: r.Snapshot()}
}

// Region brackets a measured region of a run (see Registry.Begin).
type Region struct {
	reg  *Registry
	base Snapshot
}

// End returns the metric deltas accumulated since Begin.
func (g *Region) End() Snapshot {
	return g.reg.Snapshot().Diff(g.base)
}

// Counter is a monotonically increasing event count.
type Counter struct {
	v int64
}

// Add increases the counter by d.
func (c *Counter) Add(d int64) { c.v += d }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// EmitMetrics implements Source.
func (c *Counter) EmitMetrics(emit func(string, int64)) { emit("", c.v) }

// ResetStats implements Source.
func (c *Counter) ResetStats() { c.v = 0 }

// Gauge is a last-value metric (e.g. a configured size or a high-water
// mark). Unlike counters, a gauge's Diff is rarely meaningful; gauges are
// read from snapshots directly.
type Gauge struct {
	v int64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) { g.v = v }

// Max raises the gauge to v if v is larger (high-water-mark use).
func (g *Gauge) Max(v int64) {
	if v > g.v {
		g.v = v
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 { return g.v }

// EmitMetrics implements Source.
func (g *Gauge) EmitMetrics(emit func(string, int64)) { emit("", g.v) }

// ResetStats implements Source.
func (g *Gauge) ResetStats() { g.v = 0 }

// PhaseTimer accumulates simulated cycles by (processor, phase). It emits
// one counter per processor per phase, named "p<proc>.<phase>", plus a
// "total.<phase>" sum — giving every run a per-processor helper/execution/
// transfer breakdown.
type PhaseTimer struct {
	phases []string
	cells  [][]int64 // [proc][phase index]
}

// Add charges cycles to proc's phase. The processor set grows on demand;
// an unknown phase panics (phase names are compile-time constants at the
// call sites).
func (t *PhaseTimer) Add(proc int, phase string, cycles int64) {
	if proc < 0 {
		panic(fmt.Sprintf("metrics: PhaseTimer.Add proc %d", proc))
	}
	for proc >= len(t.cells) {
		t.cells = append(t.cells, make([]int64, len(t.phases)))
	}
	t.cells[proc][t.phaseIndex(phase)] += cycles
}

// Grow ensures the timer covers at least procs processors (zero-charged),
// so a snapshot's key set reflects the machine's shape rather than which
// processors happen to have been charged — forked and fresh machines
// emit identical shapes from the start.
func (t *PhaseTimer) Grow(procs int) {
	for len(t.cells) < procs {
		t.cells = append(t.cells, make([]int64, len(t.phases)))
	}
}

// Set overwrites proc's phase to exactly cycles, growing the processor
// set like Add. Resuming a run from a checkpoint seeds timers with the
// prefix's accumulated cycles through this.
func (t *PhaseTimer) Set(proc int, phase string, cycles int64) {
	if proc < 0 {
		panic(fmt.Sprintf("metrics: PhaseTimer.Set proc %d", proc))
	}
	for proc >= len(t.cells) {
		t.cells = append(t.cells, make([]int64, len(t.phases)))
	}
	t.cells[proc][t.phaseIndex(phase)] = cycles
}

// Cycles returns the accumulated cycles for proc's phase (0 for a
// processor never charged).
func (t *PhaseTimer) Cycles(proc int, phase string) int64 {
	if proc < 0 || proc >= len(t.cells) {
		return 0
	}
	return t.cells[proc][t.phaseIndex(phase)]
}

// Total returns the phase's sum over all processors.
func (t *PhaseTimer) Total(phase string) int64 {
	i := t.phaseIndex(phase)
	var sum int64
	for _, row := range t.cells {
		sum += row[i]
	}
	return sum
}

// Procs returns the number of processors the timer has seen.
func (t *PhaseTimer) Procs() int { return len(t.cells) }

func (t *PhaseTimer) phaseIndex(phase string) int {
	for i, p := range t.phases {
		if p == phase {
			return i
		}
	}
	panic(fmt.Sprintf("metrics: unknown phase %q (have %v)", phase, t.phases))
}

// EmitMetrics implements Source.
func (t *PhaseTimer) EmitMetrics(emit func(string, int64)) {
	totals := make([]int64, len(t.phases))
	for proc, row := range t.cells {
		for i, phase := range t.phases {
			emit(fmt.Sprintf("p%d.%s", proc, phase), row[i])
			totals[i] += row[i]
		}
	}
	for i, phase := range t.phases {
		emit("total."+phase, totals[i])
	}
}

// ResetStats implements Source. The processor set is kept (the machine
// does not shrink); only the cycle counts are zeroed.
func (t *PhaseTimer) ResetStats() {
	for _, row := range t.cells {
		for i := range row {
			row[i] = 0
		}
	}
}

// Snapshot is a point-in-time capture of every metric in a registry,
// keyed by full dotted name. JSON encoding is deterministic (Go sorts map
// keys), so snapshots can be diffed textually across runs.
type Snapshot map[string]int64

// Get returns the named metric's value (0 when absent).
func (s Snapshot) Get(name string) int64 { return s[name] }

// Names returns the snapshot's keys, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Diff returns s - base pointwise over s's keys: the events of the region
// bracketed by the two snapshots. Keys only in base are dropped (a metric
// cannot disappear from a registry).
func (s Snapshot) Diff(base Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for n, v := range s {
		out[n] = v - base[n]
	}
	return out
}

// Merge returns the pointwise sum of s and other, for aggregating the
// snapshots of several runs (e.g. the loops of one sweep point).
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := make(Snapshot, len(s)+len(other))
	for n, v := range s {
		out[n] = v
	}
	for n, v := range other {
		out[n] += v
	}
	return out
}

// Merge sums any number of snapshots.
func Merge(snaps ...Snapshot) Snapshot {
	out := make(Snapshot)
	for _, s := range snaps {
		for n, v := range s {
			out[n] += v
		}
	}
	return out
}

// AllZero reports whether every metric in the snapshot is zero — the
// expected state immediately after a registry reset.
func (s Snapshot) AllZero() bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}

// NonZero returns the subset of metrics with non-zero values, for compact
// reporting.
func (s Snapshot) NonZero() Snapshot {
	out := make(Snapshot)
	for n, v := range s {
		if v != 0 {
			out[n] = v
		}
	}
	return out
}

// WithPrefix returns the subset of metrics whose names start with
// prefix+"." (or equal prefix), with the prefix stripped.
func (s Snapshot) WithPrefix(prefix string) Snapshot {
	out := make(Snapshot)
	for n, v := range s {
		switch {
		case n == prefix:
			out[""] = v
		case len(n) > len(prefix)+1 && n[:len(prefix)] == prefix && n[len(prefix)] == '.':
			out[n[len(prefix)+1:]] = v
		}
	}
	return out
}
