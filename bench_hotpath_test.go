package repro_test

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/gallery"
	"repro/internal/machine"
	"repro/internal/wave5"
)

// Hot-path benchmarks compare the compiled-plan fast engine (the default)
// against the reference interpreter on the same workloads. Both engines
// are observably identical (TestFastPathEquivalence); the ratio of these
// benchmarks is pure simulator wall-clock speedup. BENCH_hotpath.json
// records representative numbers.

// hotPathEngines names the engine variants for sub-benchmarks: the fast
// engine as configured by default (run coalescing on), the fast engine
// with coalescing disabled (isolating the coalescing gain), and the
// reference interpreter.
var hotPathEngines = []struct {
	name string
	cfg  func(machine.Config) machine.Config
}{
	{"fast", func(c machine.Config) machine.Config {
		return c.WithEngine(machine.EngineFast)
	}},
	{"fast-nocoalesce", func(c machine.Config) machine.Config {
		return c.WithEngine(machine.EngineFast).WithCoalesce(machine.CoalesceOff)
	}},
	{"reference", func(c machine.Config) machine.Config {
		return c.WithEngine(machine.EngineReference)
	}},
}

// BenchmarkHotPathSequential runs the full PARMVR mover sequentially on a
// uniprocessor PentiumPro under each engine — the purest view of the
// per-access simulation cost, with no cascade timeline around it.
func BenchmarkHotPathSequential(b *testing.B) {
	for _, e := range hotPathEngines {
		b.Run(e.name, func(b *testing.B) {
			cfg := e.cfg(machine.PentiumPro(1))
			w := wave5.MustBuild(benchParams())
			iters := 0
			for _, l := range w.Loops {
				iters += l.Iters
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, l := range w.Loops {
					cascade.RunSequential(m, l, true)
				}
			}
			b.ReportMetric(float64(iters), "sim-iters/op")
		})
	}
}

// BenchmarkHotPathDense runs the gallery triad — three unit-stride
// streams placed to avoid set conflicts — the best case for run
// coalescing: nearly every iteration is line-resident, so fast vs
// fast-nocoalesce isolates the coalescing mechanism's headroom on a
// workload that actually has runs (PARMVR mostly does not; see
// BENCH_coalesce.json).
func BenchmarkHotPathDense(b *testing.B) {
	const n = 1 << 16
	var triad gallery.Kernel
	for _, k := range gallery.Kernels() {
		if k.Name == "triad" {
			triad = k
		}
	}
	for _, e := range hotPathEngines {
		b.Run(e.name, func(b *testing.B) {
			cfg := e.cfg(machine.PentiumPro(1))
			space, l, err := triad.Build(n)
			if err != nil {
				b.Fatal(err)
			}
			_ = space
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cascade.RunSequential(m, l, true)
			}
			b.ReportMetric(float64(n), "sim-iters/op")
		})
	}
}

// BenchmarkHotPathCascade runs the PARMVR mover under cascaded execution
// with the restructuring helper on a 4-processor PentiumPro — the
// configuration the figure sweeps spend most of their time in.
func BenchmarkHotPathCascade(b *testing.B) {
	for _, e := range hotPathEngines {
		b.Run(e.name, func(b *testing.B) {
			cfg := e.cfg(machine.PentiumPro(4))
			w := wave5.MustBuild(benchParams())
			opts, err := cascade.NewOptions(
				cascade.WithHelper(cascade.HelperRestructure),
				cascade.WithSpace(w.Space),
			)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, l := range w.Loops {
					if _, err := cascade.Run(m, l, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
