package repro_test

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/wave5"
)

// Hot-path benchmarks compare the compiled-plan fast engine (the default)
// against the reference interpreter on the same workloads. Both engines
// are observably identical (TestFastPathEquivalence); the ratio of these
// benchmarks is pure simulator wall-clock speedup. BENCH_hotpath.json
// records representative numbers.

// hotPathEngines names the two engines for sub-benchmarks.
var hotPathEngines = []struct {
	name   string
	engine machine.Engine
}{
	{"fast", machine.EngineFast},
	{"reference", machine.EngineReference},
}

// BenchmarkHotPathSequential runs the full PARMVR mover sequentially on a
// uniprocessor PentiumPro under each engine — the purest view of the
// per-access simulation cost, with no cascade timeline around it.
func BenchmarkHotPathSequential(b *testing.B) {
	for _, e := range hotPathEngines {
		b.Run(e.name, func(b *testing.B) {
			cfg := machine.PentiumPro(1).WithEngine(e.engine)
			w := wave5.MustBuild(benchParams())
			iters := 0
			for _, l := range w.Loops {
				iters += l.Iters
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, l := range w.Loops {
					cascade.RunSequential(m, l, true)
				}
			}
			b.ReportMetric(float64(iters), "sim-iters/op")
		})
	}
}

// BenchmarkHotPathCascade runs the PARMVR mover under cascaded execution
// with the restructuring helper on a 4-processor PentiumPro — the
// configuration the figure sweeps spend most of their time in.
func BenchmarkHotPathCascade(b *testing.B) {
	for _, e := range hotPathEngines {
		b.Run(e.name, func(b *testing.B) {
			cfg := machine.PentiumPro(4).WithEngine(e.engine)
			w := wave5.MustBuild(benchParams())
			opts, err := cascade.NewOptions(
				cascade.WithHelper(cascade.HelperRestructure),
				cascade.WithSpace(w.Space),
			)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, l := range w.Loops {
					if _, err := cascade.Run(m, l, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
