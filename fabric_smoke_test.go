package repro_test

// Process-level smoke test for the distributed sweep fabric: builds the
// real cascade-coordinator and cascade-server binaries, boots a
// three-process fleet (one coordinator, two workers sharing a cache
// directory), runs a small fig6 sweep end-to-end with progress
// streaming, and diffs the merged result against the single-node
// driver's bytes.
//
// Gated behind FABRIC_SMOKE=1 (CI's fabric-smoke job, `make
// fabric-smoke` locally): it compiles binaries and binds TCP ports,
// which unit-test runs should not do implicitly.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
)

// fleetProc is one running fleet binary plus the address it reported.
type fleetProc struct {
	cmd  *exec.Cmd
	addr chan string // receives the "listening on http://..." address once
	logs *bytes.Buffer
	mu   sync.Mutex
}

// startProc launches a fleet binary and scans its stderr for the
// "listening on http://HOST:PORT" line.
func startProc(t *testing.T, bin string, args ...string) *fleetProc {
	t.Helper()
	p := &fleetProc{
		cmd:  exec.Command(bin, args...),
		addr: make(chan string, 1),
		logs: &bytes.Buffer{},
	}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			fmt.Fprintln(p.logs, line)
			p.mu.Unlock()
			if i := strings.Index(line, "listening on http://"); i >= 0 {
				select {
				case p.addr <- "http://" + strings.Fields(line[i+len("listening on http://"):])[0]:
				default:
				}
			}
		}
	}()
	t.Cleanup(func() {
		p.cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { p.cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			p.cmd.Process.Kill()
			<-done
		}
	})
	return p
}

func (p *fleetProc) baseURL(t *testing.T) string {
	t.Helper()
	select {
	case a := <-p.addr:
		return a
	case <-time.After(15 * time.Second):
		p.mu.Lock()
		defer p.mu.Unlock()
		t.Fatalf("process never reported a listen address; logs:\n%s", p.logs.String())
		return ""
	}
}

func TestFabricSmoke(t *testing.T) { runFabricSmoke(t, 0, false) }

// TestFabricSmokeBatchedWarm reruns the fleet smoke with batched leases
// pinned at four points per dispatch and worker-side warm-prefix
// snapshot reuse enabled: the whole point of both optimizations is that
// the merged bytes cannot move, so the same single-node diff must pass.
func TestFabricSmokeBatchedWarm(t *testing.T) { runFabricSmoke(t, 4, true) }

func runFabricSmoke(t *testing.T, batch int, warm bool) {
	if os.Getenv("FABRIC_SMOKE") != "1" {
		t.Skip("set FABRIC_SMOKE=1 to run the process-level fleet smoke test")
	}

	// Build the real binaries.
	binDir := t.TempDir()
	for _, name := range []string{"cascade-coordinator", "cascade-server"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(binDir, name), "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}

	// Boot the fleet: one coordinator, two workers, one shared cache dir.
	cacheDir := t.TempDir()
	coordArgs := []string{"-addr", "127.0.0.1:0", "-cache", cacheDir, "-heartbeat-timeout", "10s"}
	if batch > 0 {
		coordArgs = append(coordArgs, "-batch", fmt.Sprint(batch))
	}
	coord := startProc(t, filepath.Join(binDir, "cascade-coordinator"), coordArgs...)
	coordURL := coord.baseURL(t)
	var workerURLs []string
	for i := 0; i < 2; i++ {
		wargs := []string{"-addr", "127.0.0.1:0", "-cache", cacheDir,
			"-coordinator", coordURL, "-name", fmt.Sprintf("w%d", i)}
		if warm {
			wargs = append(wargs, "-warm-prefixes")
		}
		w := startProc(t, filepath.Join(binDir, "cascade-server"), wargs...)
		workerURLs = append(workerURLs, w.baseURL(t))
	}

	// Wait for both workers to enlist.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(coordURL + "/v1/workers")
		if err != nil {
			t.Fatal(err)
		}
		var fleet struct {
			Workers []struct {
				Alive bool `json:"alive"`
			} `json:"workers"`
		}
		err = json.NewDecoder(resp.Body).Decode(&fleet)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		alive := 0
		for _, w := range fleet.Workers {
			if w.Alive {
				alive++
			}
		}
		if alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d workers enlisted", alive)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Submit a small real sweep and stream it to completion.
	params := server.JobParams{Scale: 0.02}
	body, _ := json.Marshal(map[string]interface{}{"experiment": "fig6", "params": params})
	resp, err := http.Post(coordURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted server.Envelope
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || submitted.Job == nil {
		t.Fatalf("submit: err=%v env=%+v", err, submitted)
	}

	req, _ := http.NewRequest("GET", coordURL+"/v1/jobs/"+submitted.Job.ID+"?wait=120s", nil)
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var frames []server.Envelope
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var f server.Envelope
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no ndjson frames")
	}
	final := frames[len(frames)-1]
	if final.Job == nil || final.Job.State != server.StateDone {
		t.Fatalf("final frame: %+v", final)
	}

	// Diff the merged result against the single-node driver.
	res, ok, err := experiments.RunDecomposed(context.Background(), "fig6",
		params.WithDefaults().RunConfig())
	if err != nil || !ok {
		t.Fatalf("single-node fig6: ok=%v err=%v", ok, err)
	}
	want, err := server.RenderJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var gotC, wantC bytes.Buffer
	if err := json.Compact(&gotC, final.Result); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&wantC, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotC.Bytes(), wantC.Bytes()) {
		t.Fatalf("fleet result differs from single-node run:\n got: %s\nwant: %s", gotC.Bytes(), wantC.Bytes())
	}

	// The cached merged result must also serve byte-identically (the
	// indented cache rendering, straight off the shared index).
	resp, err = http.Get(coordURL + "/v1/cache/" + final.Job.Key)
	if err != nil {
		t.Fatal(err)
	}
	cached, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(cached, want) {
		t.Fatalf("shared cache index: status %d, identical=%v", resp.StatusCode, bytes.Equal(cached, want))
	}

	// Fleet metrics: points flowed, and the conservation identity holds.
	resp, err = http.Get(coordURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	vals := map[string]int{}
	for _, line := range strings.Split(string(metricsBody), "\n") {
		var name string
		var v int
		if _, err := fmt.Sscanf(line, "%s %d", &name, &v); err == nil {
			vals[name] = v
		}
	}
	if vals["fabric.points.completed"] == 0 {
		t.Fatalf("no points completed; metrics:\n%s", metricsBody)
	}
	if a, c, r, f := vals["fabric.points.assigned"], vals["fabric.points.completed"],
		vals["fabric.points.retried"], vals["fabric.points.failed"]; a != c+r+f {
		t.Fatalf("conservation violated: assigned %d != completed %d + retried %d + failed %d", a, c, r, f)
	}
	if vals["fabric.jobs.completed"] != 1 {
		t.Fatalf("jobs.completed = %d, want 1", vals["fabric.jobs.completed"])
	}
	if batch > 0 && vals["fabric.batches.dispatched"] == 0 {
		t.Fatalf("no batched leases dispatched; metrics:\n%s", metricsBody)
	}

	// With warm prefixes on, at least one worker must have retired points
	// through the snapshot-fork path (points.warm) — byte identity above
	// proves it changed nothing.
	if warm {
		warmPoints := 0
		for _, wu := range workerURLs {
			resp, err := http.Get(wu + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			wb, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			for _, line := range strings.Split(string(wb), "\n") {
				var name string
				var v int
				if _, err := fmt.Sscanf(line, "%s %d", &name, &v); err == nil && name == "points.warm" {
					warmPoints += v
				}
			}
		}
		if warmPoints == 0 {
			t.Fatal("warm-prefix fleet retired no points through the warm path")
		}
	}
}
