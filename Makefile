# Development targets. `tier1` is the merge gate (see ROADMAP.md); `race`
# is the fuller pre-merge check; `bench` regenerates the paper's headline
# benchmarks; `bench-hotpath` compares the compiled fast engine against
# the reference interpreter (see BENCH_hotpath.json for recorded runs).

GO ?= go

.PHONY: tier1 race bench bench-hotpath fmt

tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run NONE -bench 'BenchmarkFig2$$|BenchmarkFig6$$' -benchtime 1x -count 3 .

bench-hotpath:
	$(GO) test -run NONE -bench BenchmarkHotPath -benchtime 2x -count 3 .

fmt:
	gofmt -w .
