# Development targets. `tier1` is the merge gate (see ROADMAP.md); `race`
# is the fuller pre-merge check and `race-short` its fast CI variant;
# `chaos` is the fault-injection sweep of DESIGN.md §10 (fixed seed;
# set CHAOS_SEED to explore other schedules); `chaos-fabric` is the
# durability chaos pass of DESIGN.md §13 — kill the coordinator
# mid-sweep, restart it over the journal, assert zero lost and zero
# double-merged points; `fabric-smoke` builds the
# real coordinator and server binaries, boots a three-process fleet, and
# diffs a distributed sweep against the single-node driver (DESIGN.md
# §12); `serve` boots the experiment-serving daemon; `bench` regenerates the paper's headline
# benchmarks; `bench-hotpath` compares the compiled fast engine against
# the reference interpreter (see BENCH_hotpath.json and
# BENCH_coalesce.json for recorded runs); `bench-parallel` measures the
# host-parallel engine against the serial driver on the same workloads
# (recorded in BENCH_parallel.json); `bench-snapshot` measures
# copy-on-write warm-started sweeps against fresh per-point prefixes
# (recorded in BENCH_snapshot.json); `bench-fabric` measures batched
# lease dispatch and worker-side warm-prefix reuse through a real
# coordinator + worker pair (recorded in BENCH_fabric.json);
# `bench-smoke` is the CI
# keep-the-benchmarks-compiling pass: one iteration of the hot-path
# benchmarks at short-mode scale, a smoke test rather than a measurement.

GO ?= go
SERVE_FLAGS ?= -cache .cascade-cache
CHAOS_SEED ?=

.PHONY: tier1 race race-short chaos chaos-fabric fabric-smoke serve bench bench-hotpath bench-parallel bench-snapshot bench-fabric bench-smoke fmt

tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-short:
	$(GO) test -race -short ./...

chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -run TestChaos -count=1 -v ./internal/server

chaos-fabric:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -run TestChaosCoordinator -count=1 -v ./internal/fabric

fabric-smoke:
	FABRIC_SMOKE=1 $(GO) test -run TestFabricSmoke -count=1 -v .

serve:
	$(GO) run ./cmd/cascade-server $(SERVE_FLAGS)

bench:
	$(GO) test -run NONE -bench 'BenchmarkFig2$$|BenchmarkFig6$$' -benchtime 1x -count 3 .

bench-hotpath:
	$(GO) test -run NONE -bench BenchmarkHotPath -benchtime 2x -count 3 .

bench-parallel:
	$(GO) test -run NONE -bench BenchmarkParallel -benchtime 3x -count 5 .

bench-snapshot:
	$(GO) test -run NONE -bench BenchmarkSnapshot -benchtime 3x -count 5 ./internal/experiments/

bench-fabric:
	$(GO) test -run NONE -bench BenchmarkPointDispatch -benchtime 20x -count 3 ./internal/fabric/
	$(GO) test -run NONE -bench BenchmarkWarmFleetSweep -benchtime 1x -count 5 ./internal/fabric/

bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkHotPathSequential|BenchmarkHotPathCascade' -benchtime 1x -short .
	$(GO) test -run NONE -bench BenchmarkSnapshotChunkSweep -benchtime 1x -short ./internal/experiments/

fmt:
	gofmt -w .
