// Package repro_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation. Each benchmark runs the
// corresponding experiment end-to-end and reports the headline numbers as
// benchmark metrics (speedups as "x…", miss reductions as percentages),
// so `go test -bench=.` prints the reproduced results next to wall time.
//
// Benchmarks run the PARMVR dataset at a reduced scale (the workload
// shape, cache-overflow behaviour, and conflict structure are preserved;
// see wave5.Params.Scaled) to keep the suite's wall time reasonable.
// EXPERIMENTS.md records full-scale runs produced with cmd/cascade-sim.
package repro_test

import (
	"context"
	"io"
	"testing"

	"repro/internal/cascade"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/synthetic"
	"repro/internal/wave5"
)

// benchScale is the PARMVR shrink factor for benchmarks. Short mode
// (the CI bench-smoke job) shrinks further: the point there is catching
// compile errors and gross regressions in the benchmark paths on every
// push, not producing publishable numbers.
const (
	benchScale      = 0.05
	benchScaleShort = 0.01
)

func benchParams() wave5.Params {
	if testing.Short() {
		return wave5.DefaultParams().Scaled(benchScaleShort)
	}
	return wave5.DefaultParams().Scaled(benchScale)
}

// BenchmarkTable1 regenerates Table 1 (machine memory characteristics).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1().Render(io.Discard)
	}
}

// BenchmarkFig2 regenerates Figure 2: overall PARMVR speedup versus
// processor count for both helpers on both machines.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(context.Background(), benchParams(), cascade.DefaultChunkBytes)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup("PentiumPro", experiments.Restructured, 4), "xPPro-restr-4p")
		b.ReportMetric(res.Speedup("PentiumPro", experiments.Prefetched, 4), "xPPro-pref-4p")
		b.ReportMetric(res.Speedup("R10000", experiments.Restructured, 8), "xR10k-restr-8p")
		b.ReportMetric(res.Speedup("R10000", experiments.Prefetched, 8), "xR10k-pref-8p")
	}
}

// breakdown runs the shared Figure 3/4/5 measurement for one machine.
func breakdown(b *testing.B, cfg machine.Config) *experiments.BreakdownResult {
	b.Helper()
	res, err := experiments.LoopBreakdown(context.Background(), cfg.WithProcs(4), benchParams(), cascade.DefaultChunkBytes)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig3 regenerates Figure 3: per-loop execution cycles. The
// reported metric is the total restructured-vs-sequential cycle ratio.
func BenchmarkFig3(b *testing.B) {
	for _, cfg := range experiments.Machines() {
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := breakdown(b, cfg)
				cyc := func(s experiments.LoopStats) int64 { return s.Cycles }
				seq := res.Totals(experiments.Sequential, cyc)
				restr := res.Totals(experiments.Restructured, cyc)
				b.ReportMetric(float64(seq)/float64(restr), "xoverall")
			}
		})
	}
}

// BenchmarkFig4 regenerates Figure 4: per-loop L2 misses; the metric is
// the percentage of execution-phase L2 misses eliminated by restructuring
// (the paper reports 93-94% on the Pentium Pro, 47% on the R10000).
func BenchmarkFig4(b *testing.B) {
	for _, cfg := range experiments.Machines() {
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := breakdown(b, cfg)
				b.ReportMetric(100*res.MissReduction(experiments.Restructured), "%L2-eliminated")
			}
		})
	}
}

// BenchmarkFig5 regenerates Figure 5: per-loop L1 data-cache misses; the
// metric is the percentage of execution-phase L1 misses eliminated.
func BenchmarkFig5(b *testing.B) {
	for _, cfg := range experiments.Machines() {
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := breakdown(b, cfg)
				l1 := func(s experiments.LoopStats) int64 { return s.L1Misses }
				seq := res.Totals(experiments.Sequential, l1)
				restr := res.Totals(experiments.Restructured, l1)
				b.ReportMetric(100*(1-float64(restr)/float64(seq)), "%L1-eliminated")
			}
		})
	}
}

// BenchmarkFig6 regenerates Figure 6: speedup versus chunk size; the
// metrics are the best chunk size and its speedup per machine.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(context.Background(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
		ppChunk, ppSpeed := res.Best("PentiumPro", experiments.Restructured)
		rkChunk, rkSpeed := res.Best("R10000", experiments.Restructured)
		b.ReportMetric(float64(ppChunk)/1024, "KB-best-PPro")
		b.ReportMetric(ppSpeed, "xPPro-best")
		b.ReportMetric(float64(rkChunk)/1024, "KB-best-R10k")
		b.ReportMetric(rkSpeed, "xR10k-best")
	}
}

// BenchmarkFig7 regenerates Figure 7: synthetic-loop speedups under
// unbounded processors; metrics are the dense and sparse peaks per
// machine (paper: ~4 dense, 16/14 sparse).
func BenchmarkFig7(b *testing.B) {
	const n = 1 << 19 // 2MB arrays at bench scale
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(context.Background(), n)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Peak("PentiumPro", "dense"), "xPPro-dense")
		b.ReportMetric(res.Peak("PentiumPro", "sparse(k=8)"), "xPPro-sparse")
		b.ReportMetric(res.Peak("R10000", "dense"), "xR10k-dense")
		b.ReportMetric(res.Peak("R10000", "sparse(k=8)"), "xR10k-sparse")
	}
}

// BenchmarkAblationJumpOut measures §3.3's jump-out-of-helper refinement.
func BenchmarkAblationJumpOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationJumpOut(context.Background(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
		jump, _ := a.Find("PentiumPro", "jump out on signal")
		wait, _ := a.Find("PentiumPro", "wait for helper completion")
		b.ReportMetric(float64(wait.Cycles)/float64(jump.Cycles), "xjumpout-gain-PPro")
	}
}

// BenchmarkAblationPrecompute measures §2.1's read-only precomputation.
func BenchmarkAblationPrecompute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationPrecompute(context.Background(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
		raw, _ := a.Find("PentiumPro", "store raw operands")
		pre, _ := a.Find("PentiumPro", "precompute in helper")
		b.ReportMetric(float64(raw.Cycles)/float64(pre.Cycles), "xprecompute-gain-PPro")
	}
}

// BenchmarkAblationChunking compares byte-budget chunking (§2.2) against
// block partitioning.
func BenchmarkAblationChunking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationChunking(context.Background(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
		budget, _ := a.Find("PentiumPro", "64KB byte budget")
		block, _ := a.Find("PentiumPro", "one block per processor")
		b.ReportMetric(float64(block.Cycles)/float64(budget.Cycles), "xbudget-gain-PPro")
	}
}

// BenchmarkAblationCompilerPrefetch tests the paper's MIPSpro hypothesis.
func BenchmarkAblationCompilerPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationCompilerPrefetch(context.Background(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
		on, _ := a.Find("R10000", "MIPSpro prefetch on (prefetched helper)")
		off, _ := a.Find("R10000", "MIPSpro prefetch off (prefetched helper)")
		b.ReportMetric(on.Speedup, "xhelper-with-mipspro")
		b.ReportMetric(off.Speedup, "xhelper-without-mipspro")
	}
}

// BenchmarkAblationTLB measures the cost attributed to address
// translation in the sequential baseline.
func BenchmarkAblationTLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationTLB(context.Background(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
		on, _ := a.Find("R10000", "TLB modelled")
		off, _ := a.Find("R10000", "TLB disabled")
		b.ReportMetric(float64(on.Cycles)/float64(off.Cycles), "xTLB-cost-R10k")
	}
}

// BenchmarkSimulatorThroughput measures the simulator itself: simulated
// loop iterations per second for a sequential PARMVR pass, so regressions
// in the substrate are visible.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := benchParams()
	var iters int64
	w := wave5.MustBuild(p)
	for _, l := range w.Loops {
		iters += int64(l.Iters)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPARMVR(machine.PentiumPro(4), p, experiments.Sequential, cascade.DefaultChunkBytes); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(iters*int64(b.N))/b.Elapsed().Seconds(), "sim-iters/s")
}

// BenchmarkSyntheticUnbounded measures one unbounded-processor cascaded
// run of the sparse synthetic loop (the Figure 7 inner operation).
func BenchmarkSyntheticUnbounded(b *testing.B) {
	const n = 1 << 18
	for i := 0; i < b.N; i++ {
		space, l := synthetic.MustBuild(synthetic.Sparse(n))
		opts := cascade.Options{
			Helper:     cascade.HelperRestructure,
			ChunkBytes: 8 * 1024,
			JumpOut:    true,
			Space:      space,
		}
		if _, err := cascade.RunUnbounded(machine.PentiumPro(1), l, opts); err != nil {
			b.Fatal(err)
		}
	}
}
