// Command cascade-loop runs a JSON loop specification (see
// internal/loopspec) under sequential and cascaded execution and reports
// the comparison — the "bring your own loop" front end.
//
//	cascade-loop -spec examples/spec/scatter.json -machine ppro -procs 4
//
// The spec is rebuilt (fresh arrays, same seed) for every strategy so the
// runs are comparable, and results are verified bit-for-bit against
// sequential execution.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cascade"
	"repro/internal/loopspec"
	"repro/internal/machine"
	"repro/internal/report"
)

func main() {
	var (
		specPath    = flag.String("spec", "", "path to the loop spec JSON (required)")
		machineName = flag.String("machine", "ppro", "machine: ppro or r10000")
		procs       = flag.Int("procs", 0, "processor count (default: machine's full size)")
		chunkKB     = flag.Int("chunk", cascade.DefaultChunkBytes/1024, "chunk size in KB")
		precompute  = flag.Bool("precompute", false, "restructuring helper precomputes the pre stage")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "cascade-loop: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*specPath, *machineName, *procs, *chunkKB*1024, *precompute); err != nil {
		fmt.Fprintln(os.Stderr, "cascade-loop:", err)
		os.Exit(1)
	}
}

func run(specPath, machineName string, procs, chunkBytes int, precompute bool) error {
	data, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	spec, err := loopspec.Parse(data)
	if err != nil {
		return err
	}

	var cfg machine.Config
	switch strings.ToLower(machineName) {
	case "ppro", "pentiumpro":
		cfg = machine.PentiumPro(4)
	case "r10000", "r10k":
		cfg = machine.R10000(8)
	default:
		return fmt.Errorf("unknown machine %q", machineName)
	}
	if procs > 0 {
		cfg = cfg.WithProcs(procs)
	}

	// Sequential baseline, capturing the reference result.
	_, lseq, err := loopspec.Build(spec)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d iterations, %s footprint, %dB/iteration, on %s (%d procs)\n",
		lseq.Name, lseq.Iters, report.MB(lseq.FootprintBytes()), lseq.BytesPerIter(),
		cfg.Name, cfg.Procs)
	base := cascade.RunSequential(machine.MustNew(cfg), lseq, true)
	want := lseq.Writes[0].Array.Snapshot()

	t := report.NewTable("",
		"strategy", "cycles", "speedup", "helper done", "exec L2 misses", "verified")
	t.Add("sequential", report.Int(base.Cycles), "1.00", "-",
		report.Int(base.ExecL2.Misses), "reference")

	for _, h := range []cascade.Helper{cascade.HelperPrefetch, cascade.HelperRestructure} {
		space, l, err := loopspec.Build(spec)
		if err != nil {
			return err
		}
		opts, err := cascade.NewOptions(
			cascade.WithHelper(h),
			cascade.WithSpace(space),
			cascade.WithChunkBytes(chunkBytes),
			cascade.WithPrecompute(precompute),
		)
		if err != nil {
			return err
		}
		res, err := cascade.Run(machine.MustNew(cfg), l, opts)
		if err != nil {
			return err
		}
		verified := "ok"
		if eq, idx := l.Writes[0].Array.Equal(want); !eq {
			verified = fmt.Sprintf("MISMATCH at %d", idx)
		}
		t.Add(h.String(), report.Int(res.Cycles), report.Float(res.SpeedupOver(base)),
			report.Float(res.HelperCompletion()), report.Int(res.ExecL2.Misses), verified)
	}
	t.Render(os.Stdout)
	return nil
}
