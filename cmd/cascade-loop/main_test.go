package main

import (
	"os"
	"path/filepath"
	"testing"
)

const testSpec = `{
	"name": "clitest",
	"iters": 8192,
	"arrays": [
		{"name": "A", "len": 8192, "init": "i % 11"},
		{"name": "C", "len": 8192}
	],
	"reads":  [{"array": "A", "index": {}}],
	"writes": [{"array": "C", "index": {}}],
	"final":  {"exprs": ["r0 * 2"], "cycles": 2}
}`

func writeSpec(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSpec(t *testing.T) {
	path := writeSpec(t, testSpec)
	for _, m := range []string{"ppro", "r10000"} {
		if err := run(path, m, 2, 8*1024, false); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
}

func TestRunSpecPrecompute(t *testing.T) {
	path := writeSpec(t, testSpec)
	if err := run(path, "ppro", 0, 8*1024, true); err != nil {
		t.Error(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent/spec.json", "ppro", 2, 1024, false); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeSpec(t, `{"name": "x"}`)
	if err := run(bad, "ppro", 2, 1024, false); err == nil {
		t.Error("invalid spec accepted")
	}
	good := writeSpec(t, testSpec)
	if err := run(good, "vax", 2, 1024, false); err == nil {
		t.Error("unknown machine accepted")
	}
}
