// Command tracetool records, analyzes and replays address traces of the
// repository's workloads.
//
//	tracetool record  -workload parmvr:gather_ex -o gather.trc
//	tracetool analyze gather.trc
//	tracetool replay  -machine r10000 gather.trc
//
// Flags come before the trace-file argument (standard Go flag order).
//
// Workloads are "parmvr:<loopname>" (any of the fifteen PARMVR loops),
// "synthetic:dense", "synthetic:sparse", "gallery:<kernel>" (see
// internal/gallery) or "spec:<file.json>" (see internal/loopspec). Traces
// are captured from a sequential uniprocessor run and stored in the
// compact CXTR01 format.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cascade"
	"repro/internal/gallery"
	"repro/internal/loopir"
	"repro/internal/loopspec"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/synthetic"
	"repro/internal/trace"
	"repro/internal/wave5"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "analyze":
		err = analyze(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracetool record  -workload parmvr:<loop>|synthetic:<variant>|gallery:<kernel>|spec:<file.json> [-scale f] [-n elems] -o out.trc
  tracetool analyze [-line bytes] [-window accesses] <file.trc>
  tracetool replay  [-machine ppro|r10000] <file.trc>`)
}

// buildWorkload resolves a workload name to a loop.
func buildWorkload(name string, scale float64, n int) (*loopir.Loop, error) {
	kind, arg, ok := strings.Cut(name, ":")
	if !ok {
		return nil, fmt.Errorf("workload %q: want kind:name", name)
	}
	switch kind {
	case "parmvr":
		w, err := wave5.Build(wave5.DefaultParams().Scaled(scale))
		if err != nil {
			return nil, err
		}
		for _, l := range w.Loops {
			if l.Name == arg {
				return l, nil
			}
		}
		return nil, fmt.Errorf("no PARMVR loop %q (have %s)", arg, strings.Join(w.LoopNames(), ", "))
	case "synthetic":
		var p synthetic.Params
		switch arg {
		case "dense":
			p = synthetic.Dense(n)
		case "sparse":
			p = synthetic.Sparse(n)
		default:
			return nil, fmt.Errorf("synthetic variant %q: want dense or sparse", arg)
		}
		_, l, err := synthetic.Build(p)
		return l, err
	case "gallery":
		k, err := gallery.Lookup(arg)
		if err != nil {
			return nil, err
		}
		_, l, err := k.Build(n)
		return l, err
	case "spec":
		data, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		spec, err := loopspec.Parse(data)
		if err != nil {
			return nil, err
		}
		_, l, err := loopspec.Build(spec)
		return l, err
	default:
		return nil, fmt.Errorf("unknown workload kind %q", kind)
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "synthetic:dense", "workload to trace")
	scale := fs.Float64("scale", 0.1, "PARMVR dataset scale")
	n := fs.Int("n", 1<<18, "synthetic array length")
	out := fs.String("o", "trace.trc", "output file")
	fs.Parse(args)

	l, err := buildWorkload(*workload, *scale, *n)
	if err != nil {
		return err
	}
	m := machine.MustNew(machine.PentiumPro(1))
	tr := &trace.Trace{}
	m.Proc(0).SetObserver(tr.Observer())
	cascade.RunSequential(m, l, false)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	bytes, err := tr.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %s: %s accesses, %s on disk (%.1f bits/access)\n",
		l.Name, report.Int(int64(tr.Len())), report.MB(int(bytes)),
		8*float64(bytes)/float64(tr.Len()))
	return f.Close()
}

func loadTrace(fs *flag.FlagSet) (*trace.Trace, error) {
	if fs.NArg() < 1 {
		return nil, fmt.Errorf("missing trace file argument")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Decode(f)
}

func analyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	line := fs.Int("line", 32, "line size for analysis")
	window := fs.Int("window", 100000, "working-set window in accesses")
	fs.Parse(args)
	tr, err := loadTrace(fs)
	if err != nil {
		return err
	}

	lines, bytes := tr.Footprint(*line)
	fmt.Printf("%s accesses, footprint %s lines (%s), %s accessed\n",
		report.Int(int64(tr.Len())), report.Int(int64(lines)),
		report.MB(lines**line), report.MB(int(bytes)))

	h := tr.ReuseDistances(*line)
	fmt.Printf("\nreuse distances (line %dB): %s cold\n", *line, report.Int(h.Cold))
	t := report.NewTable("", "distance d+1 in", "accesses", "cum. hit rate if capacity >= d")
	var cum int64
	lo := int64(1)
	for _, nAcc := range h.Buckets {
		cum += nAcc
		t.Add(fmt.Sprintf("[%s, %s)", report.Int(lo), report.Int(lo*2)),
			report.Int(nAcc),
			report.Float(float64(cum)/float64(h.Total)))
		lo *= 2
	}
	t.Render(os.Stdout)

	fmt.Printf("\nLRU hit rate by fully-associative capacity:\n")
	for _, capLines := range []int{255, 1023, 4095, 16383, 65535} {
		hits := h.HitsUnder(capLines)
		fmt.Printf("  %8s lines (%7s): %.1f%%\n",
			report.Int(int64(capLines+1)), report.MB((capLines+1)**line),
			100*float64(hits)/float64(h.Total))
	}

	ws := tr.WorkingSet(*window, *line)
	if len(ws) > 0 {
		minL, maxL, sum := ws[0].Lines, ws[0].Lines, 0
		for _, p := range ws {
			if p.Lines < minL {
				minL = p.Lines
			}
			if p.Lines > maxL {
				maxL = p.Lines
			}
			sum += p.Lines
		}
		fmt.Printf("\nworking set per %s-access window: min %s / avg %s / max %s lines\n",
			report.Int(int64(*window)), report.Int(int64(minL)),
			report.Int(int64(sum/len(ws))), report.Int(int64(maxL)))
	}
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	machineName := fs.String("machine", "ppro", "machine: ppro or r10000")
	fs.Parse(args)
	tr, err := loadTrace(fs)
	if err != nil {
		return err
	}
	var cfg machine.Config
	switch strings.ToLower(*machineName) {
	case "ppro", "pentiumpro":
		cfg = machine.PentiumPro(1)
	case "r10000", "r10k":
		cfg = machine.R10000(1)
	default:
		return fmt.Errorf("unknown machine %q", *machineName)
	}
	res, err := trace.Replay(tr, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s accesses in %s cycles (%.2f cy/access)\n",
		cfg.Name, report.Int(res.Accesses), report.Int(res.Cycles),
		float64(res.Cycles)/float64(res.Accesses))
	fmt.Printf("L1: %s misses (%.1f%%)   L2: %s misses (%.1f%%)\n",
		report.Int(res.L1.Misses), 100*res.L1.MissRate(),
		report.Int(res.L2.Misses), 100*res.L2.MissRate())
	return nil
}
