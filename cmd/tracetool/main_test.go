package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRecordAnalyzeReplay(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trc")
	if err := record([]string{"-workload", "synthetic:dense", "-n", "8192", "-o", out}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}
	if err := analyze([]string{"-window", "1000", out}); err != nil {
		t.Errorf("analyze: %v", err)
	}
	if err := replay([]string{"-machine", "r10000", out}); err != nil {
		t.Errorf("replay: %v", err)
	}
}

func TestRecordPARMVRLoop(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.trc")
	if err := record([]string{"-workload", "parmvr:push_vx", "-scale", "0.01", "-o", out}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := replay([]string{out}); err != nil {
		t.Errorf("replay: %v", err)
	}
}

func TestRecordGalleryAndSpec(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.trc")
	if err := record([]string{"-workload", "gallery:triad", "-n", "4096", "-o", out}); err != nil {
		t.Fatalf("gallery record: %v", err)
	}
	spec := filepath.Join(t.TempDir(), "s.json")
	os.WriteFile(spec, []byte(`{
		"name": "copy", "iters": 1024,
		"arrays": [{"name": "A", "len": 1024, "init": "i"}, {"name": "C", "len": 1024}],
		"reads": [{"array": "A", "index": {}}],
		"writes": [{"array": "C", "index": {}}],
		"final": {"exprs": ["r0"]}
	}`), 0o644)
	out2 := filepath.Join(t.TempDir(), "s.trc")
	if err := record([]string{"-workload", "spec:" + spec, "-o", out2}); err != nil {
		t.Fatalf("spec record: %v", err)
	}
	if err := analyze([]string{out2}); err != nil {
		t.Errorf("analyze: %v", err)
	}
}

func TestBuildWorkloadErrors(t *testing.T) {
	cases := []string{
		"nocolon",
		"parmvr:nosuchloop",
		"synthetic:diagonal",
		"quantum:loop",
		"gallery:nosuchkernel",
		"spec:/nonexistent.json",
	}
	for _, w := range cases {
		if _, err := buildWorkload(w, 0.01, 4096); err == nil {
			t.Errorf("workload %q accepted", w)
		}
	}
}

func TestReplayErrors(t *testing.T) {
	if err := replay([]string{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := replay([]string{"/nonexistent.trc"}); err == nil {
		t.Error("nonexistent file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.trc")
	os.WriteFile(bad, []byte("garbage"), 0o644)
	if err := replay([]string{bad}); err == nil {
		t.Error("garbage file accepted")
	}
	good := filepath.Join(t.TempDir(), "g.trc")
	if err := record([]string{"-workload", "synthetic:sparse", "-n", "4096", "-o", good}); err != nil {
		t.Fatal(err)
	}
	if err := replay([]string{"-machine", "vax", good}); err == nil {
		t.Error("unknown machine accepted")
	}
}
