// Command cascade-coordinator is the distributed sweep fabric's control
// plane: it accepts experiment jobs through the same versioned HTTP API
// cascade-server speaks, decomposes sweeps into point-level work units,
// shards them across a fleet of enlisted cascade-server workers by
// consistent hashing, and merges the returned points into results
// byte-identical to a single-node run.
//
// Usage:
//
//	cascade-coordinator [-addr :8081] [-cache dir] [-journal dir]
//	                    [-drain 30s] [-lease 2m] [-heartbeat-timeout 15s]
//	                    [-inflight N] [-attempts N] [-batch N]
//	                    [-quota N] [-quotas "tenant=N,..."]
//	                    [-faults "fabric.assign:n=1"] [-fault-seed N]
//
// API (see internal/fabric for details):
//
//	GET  /v1/experiments   experiment discovery
//	POST /v1/jobs          submit a job; X-Tenant header keys quota admission
//	GET  /v1/jobs/{id}     status + result; ?wait=10s blocks; with
//	                       "Accept: application/x-ndjson" streams progress frames
//	POST /v1/workers       worker enlistment / heartbeat {"name": ..., "url": ...}
//	GET  /v1/workers       fleet membership
//	GET  /v1/cache/{key}   shared result-index probe
//	GET  /metrics          fleet counters, one "name value" per line
//
// Start workers with `cascade-server -coordinator URL`; they enlist and
// heartbeat on their own. A worker that goes silent past
// -heartbeat-timeout is declared dead and its in-flight points are
// retried on the survivors. Pointing -cache at the same directory as
// the workers' caches turns disk into a fleet-wide shared result store.
//
// -journal points at a directory for the write-ahead journal that makes
// the coordinator durable: a restarted coordinator replays the log,
// re-adopts jobs that were in flight when it died, fences stale leases
// behind a bumped epoch, and re-dispatches only the genuinely
// unfinished remainder (DESIGN.md §13). Empty disables durability.
//
// The -faults flag (development/testing only) arms the coordinator's
// deterministic injection sites (fabric.FaultSites) so dispatch-failure
// recovery can be exercised live.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
)

// coordinatorOptions carries the parsed command line into run.
type coordinatorOptions struct {
	addr             string
	cacheDir         string
	journalDir       string
	drain            time.Duration
	lease            time.Duration
	heartbeatTimeout time.Duration
	maxInflight      int
	maxAttempts      int
	batch            int
	defaultQuota     int
	quotasSpec       string
	faultsSpec       string
	faultSeed        int64
	onListen         func(net.Addr) // test hook: reports the bound address
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8081", "listen address")
		cacheDir   = flag.String("cache", "", "result cache directory (empty: in-memory only)")
		journalDir = flag.String("journal", "", "write-ahead journal directory for crash recovery (empty: not durable)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		lease      = flag.Duration("lease", 2*time.Minute, "point-dispatch lease (per-RPC deadline)")
		hbTimeout  = flag.Duration("heartbeat-timeout", 15*time.Second, "silence after which a worker is declared dead")
		inflight   = flag.Int("inflight", 16, "concurrent lease dispatches per job")
		attempts   = flag.Int("attempts", 8, "workers tried per point before the job fails")
		batch      = flag.Int("batch", 0, "points per lease (0: adapt to measured RPC overhead vs point cost)")
		quota      = flag.Int("quota", 0, "default per-tenant in-flight job quota (0: unlimited)")
		quotasSpec = flag.String("quotas", "", `per-tenant quota overrides, e.g. "alice=2,bob=8"`)
		faultsSpec = flag.String("faults", "", `fault-injection spec, e.g. "fabric.assign:n=1" (dev/testing)`)
		faultSeed  = flag.Int64("fault-seed", 1, "PRNG seed for probabilistic -faults triggers")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := coordinatorOptions{
		addr:             *addr,
		cacheDir:         *cacheDir,
		journalDir:       *journalDir,
		drain:            *drain,
		lease:            *lease,
		heartbeatTimeout: *hbTimeout,
		maxInflight:      *inflight,
		maxAttempts:      *attempts,
		batch:            *batch,
		defaultQuota:     *quota,
		quotasSpec:       *quotasSpec,
		faultsSpec:       *faultsSpec,
		faultSeed:        *faultSeed,
	}
	if err := run(ctx, os.Stderr, opts); err != nil {
		fmt.Fprintln(os.Stderr, "cascade-coordinator:", err)
		os.Exit(1)
	}
}

// parseQuotas parses "tenant=N,tenant2=M" into the per-tenant override
// map. An empty spec means no overrides.
func parseQuotas(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		tenant, raw, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || tenant == "" {
			return nil, fmt.Errorf("-quotas: bad entry %q (want tenant=N)", part)
		}
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("-quotas: bad quota in %q", part)
		}
		out[tenant] = n
	}
	return out, nil
}

// run serves until ctx is cancelled, then drains gracefully.
func run(ctx context.Context, w io.Writer, opts coordinatorOptions) error {
	inj, err := faults.Parse(opts.faultsSpec, opts.faultSeed)
	if err != nil {
		return err
	}
	if armed := inj.Sites(); len(armed) > 0 {
		valid := make(map[string]bool)
		for _, site := range fabric.FaultSites() {
			valid[site] = true
		}
		for _, site := range armed {
			if !valid[site] {
				return fmt.Errorf("-faults: unknown site %q (valid: %s)",
					site, strings.Join(fabric.FaultSites(), ", "))
			}
		}
		fmt.Fprintf(w, "cascade-coordinator: FAULT INJECTION ARMED (%s; seed %d)\n",
			strings.Join(armed, ", "), opts.faultSeed)
	}
	quotas, err := parseQuotas(opts.quotasSpec)
	if err != nil {
		return err
	}
	c, err := fabric.New(fabric.Config{
		CacheDir:         opts.cacheDir,
		JournalDir:       opts.journalDir,
		Faults:           inj,
		FaultSpec:        opts.faultsSpec,
		FaultSeed:        opts.faultSeed,
		LeaseTimeout:     opts.lease,
		HeartbeatTimeout: opts.heartbeatTimeout,
		MaxInflight:      opts.maxInflight,
		MaxPointAttempts: opts.maxAttempts,
		Batch:            opts.batch,
		DefaultQuota:     opts.defaultQuota,
		Quotas:           quotas,
	})
	if err != nil {
		return err
	}
	if opts.journalDir != "" {
		fmt.Fprintf(w, "cascade-coordinator: journal at %s (epoch %d)\n", opts.journalDir, c.Epoch())
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	if opts.onListen != nil {
		opts.onListen(ln.Addr())
	}
	fmt.Fprintf(w, "cascade-coordinator: listening on http://%s (lease %s, heartbeat timeout %s)\n",
		ln.Addr(), opts.lease, opts.heartbeatTimeout)

	hs := &http.Server{Handler: c.Handler()}
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Fprintf(w, "cascade-coordinator: shutting down (drain budget %s)\n", opts.drain)
		dctx, cancel := context.WithTimeout(context.Background(), opts.drain)
		defer cancel()
		err := c.Shutdown(dctx)
		hs.Shutdown(dctx)
		drained <- err
	}()
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-drained; err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Fprintln(w, "cascade-coordinator: drained cleanly")
	return nil
}
