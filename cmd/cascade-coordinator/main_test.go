package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestParseQuotas(t *testing.T) {
	got, err := parseQuotas("alice=2, bob=8")
	if err != nil {
		t.Fatal(err)
	}
	if want := map[string]int{"alice": 2, "bob": 8}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got, err := parseQuotas(""); err != nil || got != nil {
		t.Fatalf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"alice", "=2", "alice=-1", "alice=x"} {
		if _, err := parseQuotas(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestCoordinatorEndToEnd boots the coordinator on an ephemeral port
// with one real worker, drives the fleet API (enlist, membership,
// submit, await, metrics), then sends the shutdown signal and verifies
// a clean drain.
func TestCoordinatorEndToEnd(t *testing.T) {
	// A real in-process worker.
	s, err := server.New(server.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ws := httptest.NewServer(s.Handler())
	defer ws.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, io.Discard, coordinatorOptions{
			addr:             "127.0.0.1:0",
			drain:            10 * time.Second,
			lease:            time.Minute,
			heartbeatTimeout: time.Minute,
			maxInflight:      4,
			maxAttempts:      8,
			quotasSpec:       "t1=4",
			onListen:         func(a net.Addr) { addrCh <- a },
		})
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("coordinator exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never started listening")
	}

	// No fleet yet: healthy but idle.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "idle" {
		t.Fatalf("healthz before enlist: %d %q", resp.StatusCode, body)
	}

	// Enlist the worker.
	reg, _ := json.Marshal(map[string]string{"name": "w1", "url": ws.URL})
	resp, err = http.Post(base+"/v1/workers", "application/json", bytes.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enlist: %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"w1"`) {
		t.Fatalf("/v1/workers missing w1:\n%s", body)
	}

	// table1 is static — instant even in a unit test; it has no
	// decomposition so this exercises whole-job forwarding.
	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment": "table1"}`))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/v1/jobs/" + submitted.Job.ID + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	var finished struct {
		Job struct {
			State string `json:"state"`
		} `json:"job"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&finished); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if finished.Job.State != "done" || len(finished.Result) == 0 {
		t.Fatalf("job state %q, result %d bytes", finished.Job.State, len(finished.Result))
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "fabric.jobs.completed 1") ||
		!strings.Contains(string(body), "fabric.jobs.forwarded 1") {
		t.Fatalf("metrics missing fleet counters:\n%s", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator never drained")
	}
}
