// Command parmvr runs the PARMVR workload (the wave5 stand-in) under one
// execution strategy and prints a per-loop report: cycles, speedup over
// the sequential baseline, helper completion, and execution-phase cache
// misses.
//
// Example:
//
//	parmvr -machine r10000 -procs 8 -helper restructure -chunk 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/wave5"
)

func main() {
	var (
		machineName = flag.String("machine", "ppro", "machine: ppro or r10000")
		procs       = flag.Int("procs", 0, "processor count (default: machine's full size)")
		helperName  = flag.String("helper", "restructure", "strategy: sequential, prefetch, restructure")
		chunkKB     = flag.Int("chunk", cascade.DefaultChunkBytes/1024, "chunk size in KB")
		scale       = flag.Float64("scale", 1.0, "dataset scale factor")
		precompute  = flag.Bool("precompute", false, "restructuring helper precomputes read-only work")
		noJumpOut   = flag.Bool("no-jump-out", false, "helpers run to completion instead of jumping out on signal")
	)
	flag.Parse()
	if err := run(*machineName, *procs, *helperName, *chunkKB*1024, *scale, *precompute, !*noJumpOut); err != nil {
		fmt.Fprintln(os.Stderr, "parmvr:", err)
		os.Exit(1)
	}
}

func run(machineName string, procs int, helperName string, chunkBytes int, scale float64, precompute, jumpOut bool) error {
	var cfg machine.Config
	switch strings.ToLower(machineName) {
	case "ppro", "pentiumpro":
		cfg = machine.PentiumPro(4)
	case "r10000", "r10k":
		cfg = machine.R10000(8)
	default:
		return fmt.Errorf("unknown machine %q (want ppro or r10000)", machineName)
	}
	if procs > 0 {
		cfg = cfg.WithProcs(procs)
	}

	var helper cascade.Helper
	sequential := false
	switch strings.ToLower(helperName) {
	case "sequential", "seq":
		sequential = true
	case "prefetch", "prefetched":
		helper = cascade.HelperPrefetch
	case "restructure", "restructured":
		helper = cascade.HelperRestructure
	default:
		return fmt.Errorf("unknown helper %q", helperName)
	}

	params := wave5.DefaultParams().Scaled(scale)
	fmt.Fprintf(os.Stderr, "parmvr: %s, %d procs, %s, %s chunks, %d particles, %d cells\n",
		cfg.Name, cfg.Procs, helperName, report.KB(chunkBytes), params.Particles, params.Cells)

	// Baseline for speedups.
	baseW, err := wave5.Build(params)
	if err != nil {
		return err
	}
	baseM, err := machine.New(cfg)
	if err != nil {
		return err
	}
	baselines := make([]cascade.Result, 0, wave5.NumLoops)
	for _, l := range baseW.Loops {
		baselines = append(baselines, cascade.RunSequential(baseM, l, true))
	}

	t := report.NewTable("PARMVR per-loop results",
		"Loop", "Footprint", "Cycles", "Speedup", "Helper done", "Exec L1 miss", "Exec L2 miss")
	var total, baseTotal int64
	if sequential {
		for i, r := range baselines {
			l := baseW.Loops[i]
			t.Add(l.Name, report.MB(l.FootprintBytes()), report.Int(r.Cycles), "1.00", "-",
				report.Int(r.ExecL1.Misses), report.Int(r.ExecL2.Misses))
			total += r.Cycles
		}
		baseTotal = total
	} else {
		w, err := wave5.Build(params)
		if err != nil {
			return err
		}
		m, err := machine.New(cfg)
		if err != nil {
			return err
		}
		for i, l := range w.Loops {
			opts, err := cascade.NewOptions(
				cascade.WithHelper(helper),
				cascade.WithSpace(w.Space),
				cascade.WithChunkBytes(chunkBytes),
				cascade.WithPrecompute(precompute),
				cascade.WithJumpOut(jumpOut),
			)
			if err != nil {
				return err
			}
			r, err := cascade.Run(m, l, opts)
			if err != nil {
				return err
			}
			t.Add(l.Name, report.MB(l.FootprintBytes()), report.Int(r.Cycles),
				report.Float(r.SpeedupOver(baselines[i])),
				report.Float(r.HelperCompletion()),
				report.Int(r.ExecL1.Misses), report.Int(r.ExecL2.Misses))
			total += r.Cycles
			baseTotal += baselines[i].Cycles
		}
	}
	t.Render(os.Stdout)
	fmt.Printf("\nTotal: %s cycles; overall speedup %.2f\n",
		report.Int(total), float64(baseTotal)/float64(total))
	return nil
}
