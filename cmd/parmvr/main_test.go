package main

import "testing"

func TestRunStrategies(t *testing.T) {
	for _, h := range []string{"sequential", "prefetch", "restructure"} {
		if err := run("ppro", 2, h, 16*1024, 0.02, false, true); err != nil {
			t.Errorf("%s: %v", h, err)
		}
	}
}

func TestRunR10000WithOptions(t *testing.T) {
	if err := run("r10000", 4, "restructure", 16*1024, 0.02, true, false); err != nil {
		t.Error(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("vax", 2, "sequential", 1024, 0.02, false, true); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := run("ppro", 2, "psychic", 1024, 0.02, false, true); err == nil {
		t.Error("unknown helper accepted")
	}
}
