package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/server"
)

// smallScale keeps CLI tests fast while exercising every experiment path.
const smallScale = 0.02

func TestRunTable1(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "table1", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", quiet: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "PentiumPro", "R10000", "100-200"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunTable1CSV(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "table1", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "csv", quiet: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Processor,Memory Level") {
		t.Errorf("CSV header missing:\n%s", b.String())
	}
}

func TestRunFig2(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "fig2", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", quiet: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 2") {
		t.Error("missing Figure 2 header")
	}
}

func TestRunFigBreakdowns(t *testing.T) {
	for _, exp := range []string{"fig3", "fig4", "fig5"} {
		var b strings.Builder
		if err := run(context.Background(), &b, cliOptions{exp: exp, scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", quiet: true}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(b.String(), "gather_ex") {
			t.Errorf("%s: missing loop rows", exp)
		}
	}
}

func TestRunFig7(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "fig7", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", quiet: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 7") {
		t.Error("missing Figure 7 header")
	}
}

func TestRunAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: the ablation matrix runs many full simulations")
	}
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "ablations", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", quiet: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"jump-out", "precomputation", "chunk sizing", "MIPSpro", "TLB"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations output missing %q", want)
		}
	}
}

func TestRunConflicts(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "conflicts", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", quiet: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"miss classification", "Conflict", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("conflicts output missing %q", want)
		}
	}
}

func TestRunCharts(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: chart mode re-runs three figure sweeps")
	}
	for _, exp := range []string{"fig2", "fig3", "fig7"} {
		var b strings.Builder
		if err := run(context.Background(), &b, cliOptions{exp: exp, scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "chart", quiet: true}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		out := b.String()
		if !strings.Contains(out, "Figure") {
			t.Errorf("%s: missing figure title", exp)
		}
		if !strings.Contains(out, "#") && !strings.Contains(out, "* = ") {
			t.Errorf("%s: no chart marks in output:\n%s", exp, out)
		}
	}
}

func TestOutputMode(t *testing.T) {
	if outputMode(false, false, false) != "table" || outputMode(true, false, false) != "csv" || outputMode(false, true, false) != "chart" || outputMode(true, true, true) != "json" {
		t.Error("outputMode mapping wrong")
	}
}

func TestRunAmdahl(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: the Amdahl study sweeps serial fractions end to end")
	}
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "amdahl", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", quiet: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Application speedup") {
		t.Error("missing amdahl output")
	}
}

func TestRunJSON(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "fig2", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "json", quiet: true}); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Points []struct {
			Machine  string
			Strategy string
			Procs    int
			Speedup  float64
		}
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.Points) == 0 {
		t.Fatal("no points in JSON")
	}
	if decoded.Points[0].Strategy != "Prefetched" && decoded.Points[0].Strategy != "Restructured" {
		t.Errorf("strategy label = %q", decoded.Points[0].Strategy)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "nope", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", quiet: true}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunMetricsJSON pins the acceptance path: `cascade-sim --metrics
// json` (no explicit -exp) runs quickstart and emits per-processor
// helper/exec/transfer cycle breakdowns in the snapshots.
func TestRunMetricsJSON(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "all", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", metrics: "json", quiet: true}); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Machine string
		Procs   int
		Rows    []struct {
			Strategy string
			Cycles   int64
			Metrics  map[string]int64
		}
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(decoded.Rows))
	}
	for _, row := range decoded.Rows[1:] {
		for _, key := range []string{"cascade.p0.helper", "cascade.p0.exec", "cascade.total.transfer", "p0.l2.misses"} {
			if _, ok := row.Metrics[key]; !ok {
				t.Errorf("%s: snapshot missing %q", row.Strategy, key)
			}
		}
	}
}

func TestRunMetricsTable(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "all", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", metrics: "table", quiet: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Quickstart", "per-processor cycles and misses", "helper", "transfer"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics table output missing %q", want)
		}
	}
}

func TestRunBadMetricsMode(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "all", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", metrics: "yaml", quiet: true}); err == nil {
		t.Error("bad -metrics mode accepted")
	}
}

// TestRunQuickstartExplicit runs quickstart as a named experiment with
// the ordinary table renderer.
func TestRunQuickstartExplicit(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "quickstart", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", quiet: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "scatter-add") {
		t.Error("missing quickstart table")
	}
}

// TestRunList pins -exp list: every registered experiment is enumerated.
func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{exp: "list", mode: "table", quiet: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"quickstart", "table1", "fig2", "fig6", "fig7", "conflicts", "amdahl", "gallery", "ablations", "defaults:"} {
		if !strings.Contains(out, want) {
			t.Errorf("-exp list missing %q:\n%s", want, out)
		}
	}
}

// TestRunCacheReuse pins the -cache flag: the first run fills the
// content-addressed store, a repeat run with the same fully-resolved
// configuration is answered from it byte-for-byte (proven by replacing
// the stored entry with a validly-checksummed sentinel), a corrupted
// entry is quarantined and transparently recomputed, and a different
// configuration misses.
func TestRunCacheReuse(t *testing.T) {
	dir := t.TempDir()
	opts := cliOptions{exp: "quickstart", scale: smallScale, chunkBytes: 64 * 1024,
		n: 1 << 14, mode: "json", cacheDir: dir, quiet: true}

	var first strings.Builder
	if err := run(context.Background(), &first, opts); err != nil {
		t.Fatal(err)
	}
	var second strings.Builder
	if err := run(context.Background(), &second, opts); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("cached rerun output differs from the original run")
	}

	// Replace the single stored entry with a sentinel, written through
	// the cache so its checksum is valid; a third run must echo the
	// sentinel — proof the output came from the cache, not a fresh
	// simulation.
	entries := cacheFiles(t, dir)
	if len(entries) != 1 {
		t.Fatalf("cache holds %d files, want 1", len(entries))
	}
	jobKey, err := server.JobKey("quickstart", server.JobParams{
		Scale: opts.scale, ChunkKB: opts.chunkBytes / 1024, N: opts.n,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := server.RenderKey(jobKey, "json")
	if err := os.Remove(entries[0]); err != nil {
		t.Fatal(err)
	}
	tamper, err := server.NewCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tamper.Put(key, []byte("TAMPERED")); err != nil {
		t.Fatal(err)
	}
	var third strings.Builder
	if err := run(context.Background(), &third, opts); err != nil {
		t.Fatal(err)
	}
	if third.String() != "TAMPERED" {
		t.Errorf("third run did not come from the cache: %q", third.String())
	}

	// Corrupt the raw entry bytes: the next run must quarantine it,
	// recompute, and produce the original (uncached) output again —
	// tampered bytes are never served.
	if err := os.WriteFile(entries[0], []byte("garbage, not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	var healed strings.Builder
	if err := run(context.Background(), &healed, opts); err != nil {
		t.Fatal(err)
	}
	if healed.String() != first.String() {
		t.Error("corrupt entry was not recomputed to the original bytes")
	}
	if _, err := os.Stat(entries[0] + ".corrupt"); err != nil {
		t.Errorf("corrupt entry was not quarantined: %v", err)
	}
	if _, err := os.Stat(entries[0]); err != nil {
		t.Errorf("recomputed entry was not rewritten: %v", err)
	}

	// A different configuration must not hit the tampered entry.
	miss := opts
	miss.scale = smallScale * 2
	var fresh strings.Builder
	if err := run(context.Background(), &fresh, miss); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fresh.String(), "TAMPERED") {
		t.Error("different scale was served the old cache entry")
	}
}

// cacheFiles lists the regular files under a cache directory, skipping
// quarantined entries.
func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	var entries []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && !strings.HasSuffix(path, ".corrupt") {
			entries = append(entries, path)
		}
		return nil
	})
	return entries
}

// TestRunCancelled pins Ctrl-C behavior: a cancelled context aborts the
// dispatched experiment with context.Canceled.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b strings.Builder
	err := run(ctx, &b, cliOptions{exp: "fig2", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", quiet: true})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestProfilesValidAfterCancelledRun pins the profile shutdown path: when
// the measured run is aborted by Ctrl-C, stopProf still finalizes both
// pprof outputs, and the files on disk are complete gzip-framed profiles
// rather than truncated stubs.
func TestProfilesValidAfterCancelledRun(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.out")
	memPath := filepath.Join(dir, "mem.out")
	stopProf, err := startProfiles(cpuPath, memPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b strings.Builder
	if err := run(ctx, &b, cliOptions{exp: "fig2", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 14, mode: "table", quiet: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("run err = %v, want context.Canceled", err)
	}
	if err := stopProf(); err != nil {
		t.Fatalf("stopProf after cancelled run: %v", err)
	}
	for _, p := range []string{cpuPath, memPath} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		// runtime/pprof writes gzip-compressed protobuf; a valid file is
		// non-empty and starts with the gzip magic.
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("profile %s is not a gzip-framed pprof file (%d bytes)", p, len(data))
		}
	}
}

// TestRunParallelFlagMatchesSerial pins the -parallel wiring end to end:
// the host-parallel engine must render byte-identical experiment output.
// fig7's synthetic loops run with PriorParallel disabled, so the engine
// actually engages there rather than falling back to the serial driver.
func TestRunParallelFlagMatchesSerial(t *testing.T) {
	runOnce := func(par bool) string {
		experiments.SetParallel(par)
		t.Cleanup(func() { experiments.SetParallel(false) })
		var b strings.Builder
		if err := run(context.Background(), &b, cliOptions{exp: "fig7", scale: smallScale, chunkBytes: 64 * 1024, n: 1 << 13, mode: "table", quiet: true}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := runOnce(false)
	parallel := runOnce(true)
	if serial != parallel {
		t.Errorf("-parallel output diverges from serial:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestRunRepro pins the offline replay loop end to end: a fault-injected
// failure on an in-process server is exported as a repro bundle, and
// `cascade-sim -repro bundle.json` replays it to the identical failure.
// Then the divergence path: stripping the fault spec from the bundle
// makes the replay succeed, which -repro must report as a nonzero-exit
// divergence, not a pass.
func TestRunRepro(t *testing.T) {
	const spec = "exp.panic:n=1"
	inj, err := faults.Parse(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{Workers: 1, Faults: inj, FaultSpec: spec, FaultSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	// Small-scale quickstart keeps the defanged replay below fast: with
	// the fault spec stripped, -repro really runs the experiment.
	v, err := s.Submit("quickstart", server.JobParams{Scale: smallScale, ChunkKB: 64, N: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Await(v.ID, 10*time.Second, nil); !ok || got.State != server.StateFailed {
		t.Fatalf("job = %+v, want failed", got)
	}
	bundle, err := s.Repro(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(bundle)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := run(context.Background(), &b, cliOptions{repro: path}); err != nil {
		t.Fatalf("-repro on a faithful bundle: %v\n%s", err, b.String())
	}
	if out := b.String(); !strings.Contains(out, "reproduced:") || !strings.Contains(out, "injected panic") {
		t.Errorf("replay output missing the reproduced failure:\n%s", out)
	}

	// Strip the recorded fault spec: the replay now succeeds, so the
	// bundle's determinism claim fails to hold and -repro must say so.
	defanged := *bundle
	defanged.Faults = nil
	raw, err = json.Marshal(&defanged)
	if err != nil {
		t.Fatal(err)
	}
	divergent := filepath.Join(t.TempDir(), "divergent.json")
	if err := os.WriteFile(divergent, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	err = run(context.Background(), &b, cliOptions{repro: divergent})
	if err == nil || !strings.Contains(err.Error(), "repro diverged") {
		t.Errorf("-repro on a defanged bundle = %v, want divergence", err)
	}
	// Editing the bundle changed its replay inputs, so the stamped key
	// no longer matches — the replay warns before diverging.
	if !strings.Contains(b.String(), "edited bundle?") {
		t.Errorf("no edited-bundle warning in:\n%s", b.String())
	}

	if err := run(context.Background(), &b, cliOptions{repro: filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("-repro on a missing file succeeded")
	}
}
