// Command cascade-sim regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	cascade-sim -exp list                 # enumerate experiments
//	cascade-sim -exp table1|fig2|...|all  [flags]
//
// Experiments are dispatched through the experiments.Registry; -exp list
// prints every registered name with its description. The -scale flag
// shrinks the PARMVR dataset for quick runs (1.0 is the paper-scale
// enlarged dataset; figures in EXPERIMENTS.md use 1.0). The -csv flag
// switches table output to CSV for plotting, -chart draws ASCII charts
// for experiments that have them, and -json emits the raw result values.
//
// The -metrics flag emits the per-processor metric snapshots the
// simulator's registry records for each measured region — helper,
// execution, and transfer cycles per processor plus cache, TLB, victim
// and bus counters. "-metrics table" renders breakdown tables,
// "-metrics json" the raw snapshots. Without an explicit -exp it runs
// the quickstart scatter-add demonstration.
//
// The -cache flag points at a content-addressed result cache directory
// (the same store cascade-server's -cache uses): an experiment whose
// fully-resolved configuration was already simulated — by an earlier
// sweep or by the serving daemon — is answered from the cache instead
// of re-simulated. Entries are keyed per output mode; -json sweeps
// share entries with the server. Disk entries are checksummed: a
// corrupt entry is quarantined (renamed <key>.corrupt) and transparently
// recomputed, and a failed cache write degrades to a warning — the
// computed result is still printed.
//
// Interrupting a run (Ctrl-C) cancels the sweep promptly: in-flight
// simulation points finish, no new ones start, and the command exits
// with the cancellation error.
//
// The -parallel flag runs each simulated processor on its own host
// goroutine inside the fast engine's conservative lookahead window.
// Results are bit-identical to serial simulation — the flag only trades
// host cores for wall-clock time — but parallel runs are cached under
// their own keys, so a -cache directory never mixes the two engines.
//
// The -repro flag replays a deterministic repro bundle — the JSON
// document GET /v1/jobs/{id}/repro serves for a failed job — instead of
// running experiments: the bundle's fault spec and seed are re-armed,
// the recorded failing unit (one sweep point, or the whole experiment)
// is re-executed under the same resolved parameters and deadline, and
// the replayed failure is compared against the recorded one. Exit
// status 0 means the failure reproduced identically; anything else —
// including a replay that unexpectedly succeeds — is reported and exits
// nonzero.
//
// The -cpuprofile and -memprofile flags write standard pprof profiles
// of whatever the invocation runs — the supported way to attribute
// simulator time to engine functions (`go tool pprof cascade-sim
// cpu.out`). The CPU profile covers the whole run; the heap profile is
// snapshotted after a forced GC at exit.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/cascade"
	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/synthetic"
)

// cliOptions carries the parsed command line into run.
type cliOptions struct {
	exp        string
	scale      float64
	chunkBytes int
	n          int
	mode       string // table, csv, chart, json
	metrics    string // "", table, json
	cacheDir   string // "" = no memoization
	repro      string // path to a repro bundle to replay; "" = normal run
	quiet      bool
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment name, \"all\", or \"list\" to enumerate")
		scale   = flag.Float64("scale", 1.0, "PARMVR dataset scale factor (1.0 = paper-scale)")
		chunkKB = flag.Int("chunk", cascade.DefaultChunkBytes/1024, "chunk size in KB for fig2/fig3/fig4/fig5/quickstart")
		n       = flag.Int("n", synthetic.DefaultN, "synthetic-loop array length for fig7 and gallery")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		chart   = flag.Bool("chart", false, "draw ASCII charts instead of tables (figures only)")
		asJSON  = flag.Bool("json", false, "emit raw results as JSON (figures and studies)")
		metrics = flag.String("metrics", "", "emit per-processor metric snapshots: json or table (defaults -exp to quickstart)")
		cache   = flag.String("cache", "", "content-addressed result cache directory, shared with cascade-server")
		repro   = flag.String("repro", "", "replay a repro bundle JSON file (from GET /v1/jobs/{id}/repro) and verify the failure reproduces")
		quiet   = flag.Bool("q", false, "suppress progress messages")
		par     = flag.Bool("parallel", false, "simulate the processors on parallel host goroutines (bit-identical results)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	experiments.SetParallel(*par)
	opts := cliOptions{
		exp:        *exp,
		scale:      *scale,
		chunkBytes: *chunkKB * 1024,
		n:          *n,
		mode:       outputMode(*csv, *chart, *asJSON),
		metrics:    *metrics,
		cacheDir:   *cache,
		repro:      *repro,
		quiet:      *quiet,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cascade-sim:", err)
		os.Exit(1)
	}
	err = run(ctx, os.Stdout, opts)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cascade-sim:", err)
		os.Exit(1)
	}
}

// startProfiles turns on the requested pprof outputs and returns the
// function that finalizes them: stopping the CPU profile and, after the
// measured work has finished, snapshotting the heap. Profiling the
// simulator binary directly (rather than through go test -bench) is how
// the hot-path benchmarks in BENCH_hotpath.json were attributed to
// individual engine functions.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			runtime.GC() // settle the heap so the snapshot shows live data
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr // a short write surfaces here, not silently
			}
			if werr != nil {
				return fmt.Errorf("memprofile: %w", werr)
			}
		}
		return nil
	}, nil
}

// outputMode folds the formatting flags into one selector.
func outputMode(csv, chart, asJSON bool) string {
	switch {
	case asJSON:
		return "json"
	case chart:
		return "chart"
	case csv:
		return "csv"
	default:
		return "table"
	}
}

// emitJSON writes a result value as indented JSON.
func emitJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// render writes a result in the selected output mode. Modes a result does
// not support fall back to its table rendering.
func render(w io.Writer, r experiments.Renderable, mode string) error {
	switch mode {
	case "json":
		return emitJSON(w, r)
	case "chart":
		if c, ok := r.(experiments.ChartRenderable); ok {
			c.RenderChart(w)
			return nil
		}
	case "csv":
		if c, ok := r.(experiments.CSVRenderable); ok {
			c.RenderCSV(w)
			fmt.Fprintln(w)
			return nil
		}
	}
	r.Render(w)
	return nil
}

// runRepro replays a repro bundle and verifies the recorded failure
// reproduces: same typed error code, same first error line (panic
// stacks carry run-varying addresses past the first line). A replay
// that fails differently — or succeeds — exits nonzero, because either
// way the bundle's claim of determinism did not hold on this build.
func runRepro(ctx context.Context, w io.Writer, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var b server.ReproBundle
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("repro bundle %s: %w", path, err)
	}
	recorded := b.Key
	unit := "experiment " + b.Experiment
	if b.Point != nil {
		unit = fmt.Sprintf("point %d of %s", b.Point.Index, b.Experiment)
	}
	fmt.Fprintf(w, "replaying %s (job %s, %s)\n", path, b.Job, unit)
	if derived, err := b.DeriveKey(); err == nil && recorded != "" && derived != recorded {
		fmt.Fprintf(w, "warning: bundle key %s does not match its inputs (derived %s) — edited bundle?\n",
			recorded, derived)
	}
	replayed := server.RunRepro(ctx, &b)
	switch {
	case b.SameFailure(replayed):
		fmt.Fprintf(w, "reproduced: %s (%s)\n", server.FirstLine(replayed.Error()), b.ErrorCode)
		return nil
	case replayed == nil:
		return fmt.Errorf("repro diverged: recorded failure %q (%s), but the replay succeeded",
			server.FirstLine(b.Error), b.ErrorCode)
	default:
		return fmt.Errorf("repro diverged: recorded %q (%s), replayed %q (%s)",
			server.FirstLine(b.Error), b.ErrorCode,
			server.FirstLine(replayed.Error()), server.ErrorCodeOf(replayed))
	}
}

// list enumerates the registry from the same exported metadata the
// serving daemon's GET /v1/experiments returns.
func list(w io.Writer) {
	fmt.Fprintln(w, "experiments (run with -exp <name>, or -exp all):")
	for _, info := range experiments.Infos() {
		fmt.Fprintf(w, "  %-12s %s\n", info.Name, info.Description)
	}
	d := experiments.DefaultRunConfig()
	fmt.Fprintf(w, "defaults: -scale %g -chunk %d -n %d\n", d.Scale, d.ChunkBytes/1024, d.N)
}

func run(ctx context.Context, w io.Writer, opts cliOptions) error {
	if opts.repro != "" {
		return runRepro(ctx, w, opts.repro)
	}
	switch opts.metrics {
	case "", "table", "json":
	default:
		return fmt.Errorf("unknown -metrics mode %q (want table or json)", opts.metrics)
	}
	if opts.exp == "list" {
		list(w)
		return nil
	}
	// -metrics alone means "show me the metrics layer": the quickstart
	// demonstration is its smallest end-to-end run.
	if opts.metrics != "" && opts.exp == "all" {
		opts.exp = "quickstart"
	}
	mode := opts.mode
	if opts.metrics == "json" {
		mode = "json" // raw snapshots ride along in the result values
	}
	rc := experiments.RunConfig{
		Scale:      opts.scale,
		ChunkBytes: opts.chunkBytes,
		N:          opts.n,
	}
	if !opts.quiet {
		rc.Progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var cache *server.Cache
	if opts.cacheDir != "" {
		var err error
		cache, err = server.NewCache(opts.cacheDir, nil)
		if err != nil {
			return err
		}
	}

	names := []string{opts.exp}
	if opts.exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		e, ok := experiments.Lookup(name)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -exp list)", name)
		}
		var key string
		if cache != nil {
			jobKey, err := server.JobKey(name, server.JobParams{
				Scale:   opts.scale,
				ChunkKB: opts.chunkBytes / 1024,
				N:       opts.n,
			})
			if err != nil {
				return err
			}
			key = server.RenderKey(jobKey, mode)
			if val, ok := cache.Get(key); ok {
				if rc.Progress != nil {
					rc.Progress("%s served from cache", name)
				}
				if _, err := w.Write(val); err != nil {
					return err
				}
				continue
			}
		}
		start := time.Now()
		r, err := e.Run(ctx, rc)
		if err != nil {
			return err
		}
		if rc.Progress != nil {
			rc.Progress("%s done in %.1fs", name, time.Since(start).Seconds())
		}
		if cache == nil {
			if err := render(w, r, mode); err != nil {
				return err
			}
			continue
		}
		var buf bytes.Buffer
		if err := render(&buf, r, mode); err != nil {
			return err
		}
		if err := cache.Put(key, buf.Bytes()); err != nil {
			// Degrade, don't fail: the result is computed; only the
			// memoized copy for future runs is lost.
			fmt.Fprintf(os.Stderr, "cascade-sim: cache write failed (result not memoized): %v\n", err)
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}
