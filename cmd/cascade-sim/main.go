// Command cascade-sim regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	cascade-sim -exp table1|fig2|...|conflicts|amdahl|gallery|ablations|all [flags]
//
// The -scale flag shrinks the PARMVR dataset for quick runs (1.0 is the
// paper-scale enlarged dataset; figures in EXPERIMENTS.md use 1.0). The
// -csv flag switches table output to CSV for plotting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cascade"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/synthetic"
	"repro/internal/wave5"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1, fig2, fig3, fig4, fig5, fig6, fig7, conflicts, amdahl, gallery, ablations, all")
		scale   = flag.Float64("scale", 1.0, "PARMVR dataset scale factor (1.0 = paper-scale)")
		chunkKB = flag.Int("chunk", cascade.DefaultChunkBytes/1024, "chunk size in KB for fig2/fig3/fig4/fig5")
		n       = flag.Int("n", synthetic.DefaultN, "synthetic-loop array length for fig7")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		chart   = flag.Bool("chart", false, "draw ASCII charts instead of tables (figures only)")
		asJSON  = flag.Bool("json", false, "emit raw results as JSON (figures and studies)")
		quiet   = flag.Bool("q", false, "suppress progress messages")
	)
	flag.Parse()
	if err := run(os.Stdout, *exp, *scale, *chunkKB*1024, *n, outputMode(*csv, *chart, *asJSON), *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "cascade-sim:", err)
		os.Exit(1)
	}
}

// outputMode folds the formatting flags into one selector.
func outputMode(csv, chart, asJSON bool) string {
	switch {
	case asJSON:
		return "json"
	case chart:
		return "chart"
	case csv:
		return "csv"
	default:
		return "table"
	}
}

// emitJSON writes a result value as indented JSON.
func emitJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func run(w io.Writer, exp string, scale float64, chunkBytes, n int, mode string, quiet bool) error {
	params := wave5.DefaultParams().Scaled(scale)
	progress := func(format string, args ...interface{}) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	emit := func(t *report.Table) {
		if mode == "csv" {
			t.RenderCSV(w)
		} else {
			t.Render(w)
		}
		fmt.Fprintln(w)
	}

	runOne := func(name string) error {
		start := time.Now()
		defer func() { progress("%s done in %.1fs", name, time.Since(start).Seconds()) }()
		switch name {
		case "table1":
			emit(experiments.Table1())
		case "fig2":
			progress("fig2: PARMVR processor sweep (scale %.2f)...", scale)
			r, err := experiments.Fig2(params, chunkBytes)
			if err != nil {
				return err
			}
			switch mode {
			case "json":
				if err := emitJSON(w, r); err != nil {
					return err
				}
			case "chart":
				r.RenderChart(w)
			default:
				r.Render(w)
			}
		case "fig3", "fig4", "fig5":
			progress("%s: per-loop breakdown (scale %.2f)...", name, scale)
			for _, cfg := range experiments.Machines() {
				b, err := experiments.LoopBreakdown(cfg.WithProcs(4), params, chunkBytes)
				if err != nil {
					return err
				}
				switch {
				case mode == "json":
					if err := emitJSON(w, b); err != nil {
						return err
					}
				case name == "fig3" && mode == "chart":
					b.RenderChartFig3(w)
				case name == "fig3":
					b.RenderFig3(w)
				case name == "fig4" && mode == "chart":
					b.RenderChartFig4(w)
				case name == "fig4":
					b.RenderFig4(w)
				case name == "fig5" && mode == "chart":
					b.RenderChartFig5(w)
				case name == "fig5":
					b.RenderFig5(w)
				}
			}
		case "fig6":
			progress("fig6: chunk-size sweep (scale %.2f)...", scale)
			r, err := experiments.Fig6(params)
			if err != nil {
				return err
			}
			switch mode {
			case "json":
				if err := emitJSON(w, r); err != nil {
					return err
				}
			case "chart":
				r.RenderChart(w)
			default:
				r.Render(w)
			}
		case "fig7":
			progress("fig7: synthetic future-machine sweep (n=%d)...", n)
			r, err := experiments.Fig7(n)
			if err != nil {
				return err
			}
			switch mode {
			case "json":
				if err := emitJSON(w, r); err != nil {
					return err
				}
			case "chart":
				r.RenderChart(w)
			default:
				r.Render(w)
			}
		case "gallery":
			progress("gallery: kernel suite (n=%d)...", n)
			for _, cfg := range experiments.Machines() {
				g, err := experiments.Gallery(cfg, n, chunkBytes)
				if err != nil {
					return err
				}
				g.Render(w)
			}
		case "amdahl":
			progress("amdahl: application-level study (scale %.2f)...", scale)
			for _, cfg := range experiments.Machines() {
				a, err := experiments.Amdahl(cfg, params, chunkBytes)
				if err != nil {
					return err
				}
				switch mode {
				case "json":
					if err := emitJSON(w, a); err != nil {
						return err
					}
				case "chart":
					a.RenderChart(w)
				default:
					a.Render(w)
				}
			}
		case "conflicts":
			progress("conflicts: sequential miss classification (scale %.2f)...", scale)
			for _, cfg := range experiments.Machines() {
				c, err := experiments.ConflictAnalysis(cfg, params)
				if err != nil {
					return err
				}
				c.Render(w)
			}
		case "ablations":
			progress("ablations (scale %.2f)...", scale)
			for _, f := range []func(wave5.Params) (*experiments.AblationResult, error){
				experiments.AblationJumpOut,
				experiments.AblationPrecompute,
				experiments.AblationChunking,
				experiments.AblationCompilerPrefetch,
				experiments.AblationTLB,
				experiments.AblationPriorParallel,
				experiments.AblationVictimCache,
			} {
				a, err := f(params)
				if err != nil {
					return err
				}
				a.Render(w)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if exp == "all" {
		for _, name := range []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "conflicts", "amdahl", "gallery", "ablations"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(exp)
}
