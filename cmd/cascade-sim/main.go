// Command cascade-sim regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	cascade-sim -exp table1|fig2|...|conflicts|amdahl|gallery|ablations|quickstart|all [flags]
//
// The -scale flag shrinks the PARMVR dataset for quick runs (1.0 is the
// paper-scale enlarged dataset; figures in EXPERIMENTS.md use 1.0). The
// -csv flag switches table output to CSV for plotting.
//
// The -metrics flag emits the per-processor metric snapshots the
// simulator's registry records for each measured region — helper,
// execution, and transfer cycles per processor plus cache, TLB, victim
// and bus counters. "-metrics table" renders breakdown tables,
// "-metrics json" the raw snapshots. Without an explicit -exp it runs
// the quickstart scatter-add demonstration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cascade"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/synthetic"
	"repro/internal/wave5"
)

// cliOptions carries the parsed command line into run.
type cliOptions struct {
	exp        string
	scale      float64
	chunkBytes int
	n          int
	mode       string // table, csv, chart, json
	metrics    string // "", table, json
	quiet      bool
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: quickstart, table1, fig2, fig3, fig4, fig5, fig6, fig7, conflicts, amdahl, gallery, ablations, all")
		scale   = flag.Float64("scale", 1.0, "PARMVR dataset scale factor (1.0 = paper-scale)")
		chunkKB = flag.Int("chunk", cascade.DefaultChunkBytes/1024, "chunk size in KB for fig2/fig3/fig4/fig5/quickstart")
		n       = flag.Int("n", synthetic.DefaultN, "synthetic-loop array length for fig7")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		chart   = flag.Bool("chart", false, "draw ASCII charts instead of tables (figures only)")
		asJSON  = flag.Bool("json", false, "emit raw results as JSON (figures and studies)")
		metrics = flag.String("metrics", "", "emit per-processor metric snapshots: json or table (defaults -exp to quickstart)")
		quiet   = flag.Bool("q", false, "suppress progress messages")
	)
	flag.Parse()
	opts := cliOptions{
		exp:        *exp,
		scale:      *scale,
		chunkBytes: *chunkKB * 1024,
		n:          *n,
		mode:       outputMode(*csv, *chart, *asJSON),
		metrics:    *metrics,
		quiet:      *quiet,
	}
	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "cascade-sim:", err)
		os.Exit(1)
	}
}

// outputMode folds the formatting flags into one selector.
func outputMode(csv, chart, asJSON bool) string {
	switch {
	case asJSON:
		return "json"
	case chart:
		return "chart"
	case csv:
		return "csv"
	default:
		return "table"
	}
}

// emitJSON writes a result value as indented JSON.
func emitJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func run(w io.Writer, opts cliOptions) error {
	switch opts.metrics {
	case "", "table", "json":
	default:
		return fmt.Errorf("unknown -metrics mode %q (want table or json)", opts.metrics)
	}
	// -metrics alone means "show me the metrics layer": the quickstart
	// demonstration is its smallest end-to-end run.
	if opts.metrics != "" && opts.exp == "all" {
		opts.exp = "quickstart"
	}
	params := wave5.DefaultParams().Scaled(opts.scale)
	progress := func(format string, args ...interface{}) {
		if !opts.quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	emit := func(t *report.Table) {
		if opts.mode == "csv" {
			t.RenderCSV(w)
		} else {
			t.Render(w)
		}
		fmt.Fprintln(w)
	}

	runOne := func(name string) error {
		start := time.Now()
		defer func() { progress("%s done in %.1fs", name, time.Since(start).Seconds()) }()
		switch name {
		case "quickstart":
			qn := int(float64(experiments.QuickstartN) * opts.scale)
			if qn < 1<<10 {
				qn = 1 << 10
			}
			progress("quickstart: scatter-add metrics demo (n=%d)...", qn)
			r, err := experiments.Quickstart(qn, opts.chunkBytes)
			if err != nil {
				return err
			}
			if opts.metrics == "json" || opts.mode == "json" {
				return emitJSON(w, r)
			}
			r.Render(w)
		case "table1":
			emit(experiments.Table1())
		case "fig2":
			progress("fig2: PARMVR processor sweep (scale %.2f)...", opts.scale)
			r, err := experiments.Fig2(params, opts.chunkBytes)
			if err != nil {
				return err
			}
			switch opts.mode {
			case "json":
				if err := emitJSON(w, r); err != nil {
					return err
				}
			case "chart":
				r.RenderChart(w)
			default:
				r.Render(w)
			}
		case "fig3", "fig4", "fig5":
			progress("%s: per-loop breakdown (scale %.2f)...", name, opts.scale)
			for _, cfg := range experiments.Machines() {
				b, err := experiments.LoopBreakdown(cfg.WithProcs(4), params, opts.chunkBytes)
				if err != nil {
					return err
				}
				switch {
				case opts.mode == "json":
					if err := emitJSON(w, b); err != nil {
						return err
					}
				case name == "fig3" && opts.mode == "chart":
					b.RenderChartFig3(w)
				case name == "fig3":
					b.RenderFig3(w)
				case name == "fig4" && opts.mode == "chart":
					b.RenderChartFig4(w)
				case name == "fig4":
					b.RenderFig4(w)
				case name == "fig5" && opts.mode == "chart":
					b.RenderChartFig5(w)
				case name == "fig5":
					b.RenderFig5(w)
				}
			}
		case "fig6":
			progress("fig6: chunk-size sweep (scale %.2f)...", opts.scale)
			r, err := experiments.Fig6(params)
			if err != nil {
				return err
			}
			switch opts.mode {
			case "json":
				if err := emitJSON(w, r); err != nil {
					return err
				}
			case "chart":
				r.RenderChart(w)
			default:
				r.Render(w)
			}
		case "fig7":
			progress("fig7: synthetic future-machine sweep (n=%d)...", opts.n)
			r, err := experiments.Fig7(opts.n)
			if err != nil {
				return err
			}
			switch opts.mode {
			case "json":
				if err := emitJSON(w, r); err != nil {
					return err
				}
			case "chart":
				r.RenderChart(w)
			default:
				r.Render(w)
			}
		case "gallery":
			progress("gallery: kernel suite (n=%d)...", opts.n)
			for _, cfg := range experiments.Machines() {
				g, err := experiments.Gallery(cfg, opts.n, opts.chunkBytes)
				if err != nil {
					return err
				}
				g.Render(w)
			}
		case "amdahl":
			progress("amdahl: application-level study (scale %.2f)...", opts.scale)
			for _, cfg := range experiments.Machines() {
				a, err := experiments.Amdahl(cfg, params, opts.chunkBytes)
				if err != nil {
					return err
				}
				switch opts.mode {
				case "json":
					if err := emitJSON(w, a); err != nil {
						return err
					}
				case "chart":
					a.RenderChart(w)
				default:
					a.Render(w)
				}
			}
		case "conflicts":
			progress("conflicts: sequential miss classification (scale %.2f)...", opts.scale)
			for _, cfg := range experiments.Machines() {
				c, err := experiments.ConflictAnalysis(cfg, params)
				if err != nil {
					return err
				}
				c.Render(w)
			}
		case "ablations":
			progress("ablations (scale %.2f)...", opts.scale)
			for _, f := range []func(wave5.Params) (*experiments.AblationResult, error){
				experiments.AblationJumpOut,
				experiments.AblationPrecompute,
				experiments.AblationChunking,
				experiments.AblationCompilerPrefetch,
				experiments.AblationTLB,
				experiments.AblationPriorParallel,
				experiments.AblationVictimCache,
			} {
				a, err := f(params)
				if err != nil {
					return err
				}
				a.Render(w)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if opts.exp == "all" {
		for _, name := range []string{"quickstart", "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "conflicts", "amdahl", "gallery", "ablations"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(opts.exp)
}
