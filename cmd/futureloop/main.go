// Command futureloop runs the paper's §3.4 synthetic loop
//
//	do i = 1, n, k
//	   X(IJ(i)) = X(IJ(i)) + A(i) + B(i)
//
// under cascaded execution with unbounded processors (the paper's
// methodology for projecting future machines) and reports the speedup
// over sequential execution.
//
// Example:
//
//	futureloop -machine ppro -variant sparse -chunk 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/synthetic"
)

func main() {
	var (
		machineName = flag.String("machine", "ppro", "machine: ppro or r10000")
		variant     = flag.String("variant", "dense", "dense or sparse")
		helperName  = flag.String("helper", "restructure", "prefetch or restructure")
		chunkKB     = flag.Int("chunk", 8, "chunk size in KB")
		n           = flag.Int("n", synthetic.DefaultN, "array length")
	)
	flag.Parse()
	if err := run(*machineName, *variant, *helperName, *chunkKB*1024, *n); err != nil {
		fmt.Fprintln(os.Stderr, "futureloop:", err)
		os.Exit(1)
	}
}

func run(machineName, variant, helperName string, chunkBytes, n int) error {
	var cfg machine.Config
	switch strings.ToLower(machineName) {
	case "ppro", "pentiumpro":
		cfg = machine.PentiumPro(1)
	case "r10000", "r10k":
		cfg = machine.R10000(1)
	default:
		return fmt.Errorf("unknown machine %q", machineName)
	}

	var params synthetic.Params
	switch strings.ToLower(variant) {
	case "dense":
		params = synthetic.Dense(n)
	case "sparse":
		params = synthetic.Sparse(n)
	default:
		return fmt.Errorf("unknown variant %q (want dense or sparse)", variant)
	}

	var helper cascade.Helper
	switch strings.ToLower(helperName) {
	case "prefetch", "prefetched":
		helper = cascade.HelperPrefetch
	case "restructure", "restructured":
		helper = cascade.HelperRestructure
	default:
		return fmt.Errorf("unknown helper %q", helperName)
	}

	_, lbase, err := synthetic.Build(params)
	if err != nil {
		return err
	}
	base, err := cascade.SequentialBaseline(cfg, lbase)
	if err != nil {
		return err
	}

	space, l, err := synthetic.Build(params)
	if err != nil {
		return err
	}
	opts, err := cascade.NewOptions(
		cascade.WithHelper(helper),
		cascade.WithChunkBytes(chunkBytes),
		cascade.WithSpace(space),
		cascade.WithPriorParallel(false),
	)
	if err != nil {
		return err
	}
	r, err := cascade.RunUnbounded(cfg, l, opts)
	if err != nil {
		return err
	}

	fmt.Printf("%s, %s, %s helper, %s chunks, n=%d (arrays %s each)\n",
		cfg.Name, params.Name(), helper, report.KB(chunkBytes), n, report.MB(n*4))
	fmt.Printf("sequential:      %s cycles (%.1f cycles/iteration)\n",
		report.Int(base.Cycles), float64(base.Cycles)/float64(lbase.Iters))
	fmt.Printf("cascaded (inf p): %s cycles = %s exec + %s transfers over %d chunks\n",
		report.Int(r.Cycles), report.Int(r.ExecCycles), report.Int(r.TransferCycles), r.Chunks)
	fmt.Printf("speedup:         %.2f\n", r.SpeedupOver(base))
	return nil
}
