package main

import "testing"

func TestRunVariants(t *testing.T) {
	for _, m := range []string{"ppro", "r10000"} {
		for _, v := range []string{"dense", "sparse"} {
			for _, h := range []string{"prefetch", "restructure"} {
				if err := run(m, v, h, 4*1024, 1<<14); err != nil {
					t.Errorf("%s/%s/%s: %v", m, v, h, err)
				}
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("vax", "dense", "prefetch", 1024, 1<<14); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := run("ppro", "diagonal", "prefetch", 1024, 1<<14); err == nil {
		t.Error("unknown variant accepted")
	}
	if err := run("ppro", "dense", "psychic", 1024, 1<<14); err == nil {
		t.Error("unknown helper accepted")
	}
	if err := run("ppro", "dense", "prefetch", 1024, 3); err == nil {
		t.Error("tiny n accepted")
	}
}
