// Command cascade-native tries cascaded execution on the real host: it
// builds the paper's synthetic scatter loop over multi-megabyte arrays
// and times sequential execution against cascaded execution with each
// helper.
//
// Expect modest or no wins on modern hardware — deep out-of-order
// execution, hardware prefetchers and shared caches have absorbed most of
// what cascading bought in 1999. The simulator (cmd/cascade-sim) is the
// reproduction vehicle; this command is the "try it natively" demo.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/native"
)

func main() {
	var (
		n       = flag.Int("n", 1<<24, "array length (x8 bytes per array)")
		procs   = flag.Int("procs", runtime.NumCPU(), "worker threads")
		chunk   = flag.Int("chunk", 8192, "chunk size in iterations")
		pin     = flag.Bool("pin", true, "pin workers to CPUs (Linux)")
		repeats = flag.Int("repeats", 3, "timing repetitions (best is reported)")
	)
	flag.Parse()
	if err := run(*n, *procs, *chunk, *pin, *repeats); err != nil {
		fmt.Fprintln(os.Stderr, "cascade-native:", err)
		os.Exit(1)
	}
}

// buildKernel allocates fresh arrays and returns the kernel plus a
// checksum function for sanity.
func buildKernel(n int) (*native.Kernel, func() float64) {
	x := make([]float64, n)
	ij := make([]int32, n)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range x {
		x[i] = float64(i & 1023)
		ij[i] = int32((i * 2654435761) % n) // pseudo-random scatter
		a[i] = float64(i & 255)
		b[i] = float64(i & 127)
	}
	k := &native.Kernel{
		Iters: n,
		Execute: func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x[ij[i]] += a[i] + b[i]
			}
		},
		Touch: func(lo, hi int) {
			var sink float64
			for i := lo; i < hi; i++ {
				sink += x[ij[i]] + a[i] + b[i]
			}
			_ = sink
		},
		SlotsPerIter: 2,
		Gather: func(lo, hi int, buf []float64) {
			for i := lo; i < hi; i++ {
				buf[(i-lo)*2] = a[i] + b[i]
				buf[(i-lo)*2+1] = float64(ij[i])
			}
		},
		ExecuteFromBuffer: func(lo, hi int, buf []float64) {
			for i := lo; i < hi; i++ {
				x[int(buf[(i-lo)*2+1])] += buf[(i-lo)*2]
			}
		},
	}
	sum := func() float64 {
		var s float64
		for _, v := range x {
			s += v
		}
		return s
	}
	return k, sum
}

func run(n, procs, chunk int, pin bool, repeats int) error {
	fmt.Printf("native cascaded execution: n=%d (%.0fMB of arrays), %d procs, %d-iteration chunks\n",
		n, float64(n)*28/(1<<20), procs, chunk)

	best := func(f func() (float64, float64, error)) (float64, float64, error) {
		var bt, bsum float64
		for r := 0; r < repeats; r++ {
			t, s, err := f()
			if err != nil {
				return 0, 0, err
			}
			if bt == 0 || t < bt {
				bt, bsum = t, s
			}
		}
		return bt, bsum, nil
	}

	seqTime, seqSum, err := best(func() (float64, float64, error) {
		k, sum := buildKernel(n)
		d, err := native.RunSequential(k)
		return d.Seconds(), sum(), err
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %8.3fs\n", "sequential", seqTime)

	for _, h := range []native.Helper{native.HelperNone, native.HelperTouch, native.HelperGather} {
		t, s, err := best(func() (float64, float64, error) {
			k, sum := buildKernel(n)
			res, err := native.Run(k, native.Options{
				Procs: procs, ChunkIters: chunk, Helper: h, PinCPUs: pin,
			})
			return res.Elapsed.Seconds(), sum(), err
		})
		if err != nil {
			return err
		}
		status := "ok"
		if s != seqSum {
			status = "CHECKSUM MISMATCH"
		}
		fmt.Printf("%-12s %8.3fs  speedup %.2f  (%s)\n", "casc/"+h.String(), t, seqTime/t, status)
	}
	return nil
}
