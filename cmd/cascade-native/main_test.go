package main

import "testing"

func TestRunSmall(t *testing.T) {
	// A small native run: verifies the checksums agree across strategies
	// (run prints CHECKSUM MISMATCH on divergence but returns nil, so
	// exercise the kernel directly too).
	if err := run(1<<16, 2, 2048, false, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBuildKernelChecksumStable(t *testing.T) {
	k1, sum1 := buildKernel(1 << 12)
	k2, sum2 := buildKernel(1 << 12)
	k1.Execute(0, k1.Iters)
	k2.Execute(0, k2.Iters)
	if sum1() != sum2() {
		t.Error("kernel construction not deterministic")
	}
}

func TestKernelGatherMatchesExecute(t *testing.T) {
	const n = 1 << 12
	k1, sum1 := buildKernel(n)
	k1.Execute(0, n)

	k2, sum2 := buildKernel(n)
	buf := make([]float64, n*k2.SlotsPerIter)
	k2.Gather(0, n, buf)
	k2.ExecuteFromBuffer(0, n, buf)

	if sum1() != sum2() {
		t.Error("gather path result differs from direct execution")
	}
}
