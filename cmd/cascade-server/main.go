// Command cascade-server is the experiment-serving daemon: a long-running
// HTTP JSON service over the experiments.Registry with a bounded job
// queue, a content-addressed result cache, and live metrics.
//
// Usage:
//
//	cascade-server [-addr :8080] [-workers N] [-queue N] [-cache dir]
//	               [-quarantine-ttl 24h] [-drain 30s] [-job-timeout 15m]
//	               [-coordinator URL] [-advertise URL] [-name NAME]
//	               [-warm-prefixes] [-prefix-cache-mb N]
//	               [-faults "site:p=0.05;..."] [-fault-seed N]
//
// API (see internal/server for details):
//
//	GET  /v1/experiments       experiment discovery (names, descriptions, defaults)
//	POST /v1/jobs              submit {"experiment": "fig2", "params": {"scale": 0.1}}
//	GET  /v1/jobs/{id}         job status + result; ?wait=10s blocks until done
//	GET  /v1/jobs/{id}/repro   deterministic repro bundle of a failed job
//	POST /v1/points            execute one sweep point (the fabric's work unit)
//	GET  /metrics              live counters/gauges, one "name value" per line
//
// With -coordinator the daemon enlists as a worker in a distributed
// sweep fabric (see internal/fabric and cascade-coordinator): it
// registers under -name at the -advertise URL and heartbeats until
// shutdown, receiving sharded sweep points on POST /v1/points. Both
// -advertise and -name default to the bound listen address. With
// -warm-prefixes the worker computes each sweep's shared prefix once,
// parks the sealed machine snapshot in a bounded LRU (-prefix-cache-mb),
// and forks it per point — byte-identical results, less repeated warmup.
//
// Identical jobs are answered from the cache without re-simulating, and
// concurrent identical submissions coalesce into one run. With -cache
// the store persists across restarts and is shared with
// `cascade-sim -cache` sweeps.
//
// SIGINT/SIGTERM triggers graceful shutdown: submissions are rejected,
// queued and running jobs drain within the -drain budget, then in-flight
// sweeps are cancelled through the experiment layer's context plumbing.
//
// The -faults flag (development/testing only) arms the deterministic
// fault-injection layer of DESIGN.md §10 so the daemon's degradation
// paths can be exercised live: e.g.
//
//	cascade-server -faults "exp.panic:p=0.1;cache.write:n=3"
//
// panics one run in ten and fails the third disk write. Probabilistic
// sites replay from -fault-seed. Valid sites are those of
// server.FaultSites(); the daemon refuses to start on an unknown one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/server"
)

// serverOptions carries the parsed command line into run.
type serverOptions struct {
	addr          string
	workers       int
	queueDepth    int
	cacheDir      string
	quarantine    time.Duration
	drain         time.Duration
	jobTimeout    time.Duration
	coordinator   string
	warmPrefixes  bool
	prefixCacheMB int
	advertise     string
	workerName    string
	faultsSpec    string
	faultSeed     int64
	onListen      func(net.Addr) // test hook: reports the bound address
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers     = flag.Int("workers", experiments.DefaultJobWorkers(), "concurrent experiment jobs")
		queue       = flag.Int("queue", 64, "bounded job-queue depth")
		cacheDir    = flag.String("cache", "", "result cache directory (empty: in-memory only)")
		quarantine  = flag.Duration("quarantine-ttl", server.DefaultQuarantineTTL, "age past which quarantined .corrupt cache files are purged at startup (negative disables)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		jobTimeout  = flag.Duration("job-timeout", server.DefaultJobTimeout, "default per-job execution deadline (0 disables)")
		coordinator = flag.String("coordinator", "", "enlist as a fabric worker with this coordinator URL")
		warmPrefix  = flag.Bool("warm-prefixes", false, "reuse sealed prefix snapshots across sweep points (fabric worker warm path)")
		prefixMB    = flag.Int("prefix-cache-mb", 0, "warm-prefix snapshot LRU ceiling in MiB (0: default)")
		advertise   = flag.String("advertise", "", "URL the coordinator dispatches to (default: the bound listen address)")
		workerName  = flag.String("name", "", "worker name within the fleet (default: the bound listen address)")
		faultsSpec  = flag.String("faults", "", `fault-injection spec, e.g. "exp.panic:p=0.1;cache.write:n=3" (dev/testing)`)
		faultSeed   = flag.Int64("fault-seed", 1, "PRNG seed for probabilistic -faults triggers")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := serverOptions{
		addr:          *addr,
		workers:       *workers,
		queueDepth:    *queue,
		cacheDir:      *cacheDir,
		quarantine:    *quarantine,
		drain:         *drain,
		jobTimeout:    *jobTimeout,
		coordinator:   *coordinator,
		warmPrefixes:  *warmPrefix,
		prefixCacheMB: *prefixMB,
		advertise:     *advertise,
		workerName:    *workerName,
		faultsSpec:    *faultsSpec,
		faultSeed:     *faultSeed,
	}
	if err := run(ctx, os.Stderr, opts); err != nil {
		fmt.Fprintln(os.Stderr, "cascade-server:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled, then drains gracefully. The log
// writer w receives startup and shutdown progress lines.
func run(ctx context.Context, w io.Writer, opts serverOptions) error {
	inj, err := faults.Parse(opts.faultsSpec, opts.faultSeed)
	if err != nil {
		return err
	}
	if armed := inj.Sites(); len(armed) > 0 {
		valid := make(map[string]bool)
		for _, site := range server.FaultSites() {
			valid[site] = true
		}
		for _, site := range armed {
			if !valid[site] {
				return fmt.Errorf("-faults: unknown site %q (valid: %s)",
					site, strings.Join(server.FaultSites(), ", "))
			}
		}
		fmt.Fprintf(w, "cascade-server: FAULT INJECTION ARMED (%s; seed %d)\n",
			strings.Join(armed, ", "), opts.faultSeed)
	}
	jobTimeout := opts.jobTimeout
	if jobTimeout == 0 {
		jobTimeout = -1 // flag 0 = "no deadline"; Config 0 = "use default"
	}
	s, err := server.New(server.Config{
		Workers:          opts.workers,
		QueueDepth:       opts.queueDepth,
		CacheDir:         opts.cacheDir,
		QuarantineTTL:    opts.quarantine,
		JobTimeout:       jobTimeout,
		Faults:           inj,
		FaultSpec:        opts.faultsSpec,
		FaultSeed:        opts.faultSeed,
		WarmPrefixes:     opts.warmPrefixes,
		PrefixCacheBytes: int64(opts.prefixCacheMB) << 20,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	if opts.onListen != nil {
		opts.onListen(ln.Addr())
	}
	fmt.Fprintf(w, "cascade-server: listening on http://%s (%d workers, queue %d)\n",
		ln.Addr(), opts.workers, opts.queueDepth)

	if opts.coordinator != "" {
		name, advertise := opts.workerName, opts.advertise
		if name == "" {
			name = ln.Addr().String()
		}
		if advertise == "" {
			advertise = "http://" + ln.Addr().String()
		}
		fmt.Fprintf(w, "cascade-server: enlisting with %s as %q (advertising %s)\n",
			opts.coordinator, name, advertise)
		go fabric.Enlist(ctx, fabric.EnlistConfig{
			Coordinator: opts.coordinator,
			Name:        name,
			Advertise:   advertise,
			OnError: func(err error) {
				fmt.Fprintf(w, "cascade-server: heartbeat: %v\n", err)
			},
		})
	}

	hs := &http.Server{Handler: s.Handler()}
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Fprintf(w, "cascade-server: shutting down (drain budget %s)\n", opts.drain)
		dctx, cancel := context.WithTimeout(context.Background(), opts.drain)
		defer cancel()
		// Drain the job queue first so blocked ?wait= requests resolve,
		// then stop the HTTP listener.
		err := s.Shutdown(dctx)
		hs.Shutdown(dctx)
		drained <- err
	}()
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-drained; err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Fprintln(w, "cascade-server: drained cleanly")
	return nil
}
