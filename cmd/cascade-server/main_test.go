package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDaemonEndToEnd boots the daemon on an ephemeral port, drives the
// HTTP API (discovery, submit, await, metrics), then sends the shutdown
// signal and verifies a clean drain.
func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, io.Discard, serverOptions{
			addr:       "127.0.0.1:0",
			workers:    1,
			queueDepth: 4,
			cacheDir:   t.TempDir(),
			drain:      10 * time.Second,
			onListen:   func(a net.Addr) { addrCh <- a },
		})
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started listening")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"quickstart"`) {
		t.Errorf("/v1/experiments missing quickstart:\n%s", body)
	}

	// table1 is static — instant even in a unit test.
	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment": "table1"}`))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/v1/jobs/" + submitted.Job.ID + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Job struct {
			State string `json:"state"`
			Error string `json:"error"`
		} `json:"job"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.Job.State != "done" || len(env.Result) == 0 {
		t.Fatalf("job = %s (error %q), want done with result", env.Job.State, env.Job.Error)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "jobs.completed 1") {
		t.Errorf("/metrics missing jobs.completed 1:\n%s", body)
	}

	cancel() // deliver the "signal"
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exit = %v, want clean drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
