// SpMV: sparse matrix-vector multiply in COO form, y[r[k]] += v[k] *
// x[c[k]] — a loop no compiler can parallelize (row indices may repeat)
// and a double-indirection workload: every iteration gathers x through
// the column index AND scatters into y through the row index.
//
// Restructuring shines here: the helper packs v[k]*x[c[k]] (the whole
// gather side, precomputed) plus the row index into the sequential
// buffer, leaving the execution phase a pure stream-in/scatter-out loop.
// The example builds a banded random matrix, runs all three strategies on
// the simulated Pentium Pro, checks the results agree bit-for-bit, and
// prints the comparison.
package main

import (
	"fmt"
	"log"

	"repro/internal/cascade"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/report"
)

const (
	rows = 1 << 17 // 128K rows/cols
	nnz  = 1 << 21 // 2M nonzeros (~16 per row)
)

// buildSpMV constructs the COO loop over fresh arrays.
func buildSpMV() (*memsim.Space, *loopir.Loop) {
	s := memsim.NewSpace()
	val := s.Alloc("VAL", nnz, 8, 4096)
	row := s.Alloc("ROW", nnz, 4, 4096)
	col := s.Alloc("COL", nnz, 4, 4096)
	x := s.Alloc("X", rows, 8, 4096)
	y := s.Alloc("Y", rows, 8, 4096)

	rng := uint64(99)
	next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng }
	val.Fill(func(int) float64 { return 1 + float64(next()%1000)/1000 })
	x.Fill(func(int) float64 { return float64(next()%100) / 10 })
	// Banded structure: nonzero k belongs to row k/(nnz/rows), column
	// within a +-2048 band around the diagonal (wrapping).
	perRow := nnz / rows
	row.Fill(func(k int) float64 { return float64(k / perRow) })
	col.Fill(func(k int) float64 {
		r := k / perRow
		off := int(next()%4096) - 2048
		c := (r + off + rows) % rows
		return float64(c)
	})

	yref := loopir.Ref{Array: y, Index: loopir.Indirect{Tbl: row, Entry: loopir.Ident}}
	l := &loopir.Loop{
		Name:  "spmv-coo",
		Iters: nnz,
		RO: []loopir.Ref{
			{Array: val, Index: loopir.Ident},
			{Array: x, Index: loopir.Indirect{Tbl: col, Entry: loopir.Ident}},
		},
		RW:        []loopir.Ref{yref},
		Writes:    []loopir.Ref{yref},
		PreCycles: 3, FinalCycles: 2,
		NPre: 1,
		Pre:  func(_ int, ro []float64) []float64 { return []float64{ro[0] * ro[1]} },
		Final: func(_ int, pre, rw []float64) []float64 {
			return []float64{rw[0] + pre[0]}
		},
	}
	if err := l.Validate(); err != nil {
		log.Fatal(err)
	}
	return s, l
}

func main() {
	cfg := machine.PentiumPro(4)
	fmt.Printf("SpMV (COO): %d nonzeros over %d rows, %s footprint, %s (%d procs)\n",
		nnz, rows, report.MB(buildFootprint()), cfg.Name, cfg.Procs)

	_, lseq := buildSpMV()
	base := cascade.RunSequential(machine.MustNew(cfg), lseq, true)
	want := lseq.Writes[0].Array.Snapshot()
	fmt.Printf("%-22s %14s cycles\n", "sequential", report.Int(base.Cycles))

	for _, pre := range []bool{false, true} {
		for _, h := range []cascade.Helper{cascade.HelperPrefetch, cascade.HelperRestructure} {
			if pre && h != cascade.HelperRestructure {
				continue
			}
			space, l := buildSpMV()
			opts, err := cascade.NewOptions(
				cascade.WithHelper(h),
				cascade.WithSpace(space),
				cascade.WithPrecompute(pre),
			)
			if err != nil {
				log.Fatal(err)
			}
			res, err := cascade.Run(machine.MustNew(cfg), l, opts)
			if err != nil {
				log.Fatal(err)
			}
			if eq, idx := l.Writes[0].Array.Equal(want); !eq {
				log.Fatalf("%v: y diverged at %d", h, idx)
			}
			name := h.String()
			if pre {
				name += "+precompute"
			}
			fmt.Printf("%-22s %14s cycles  speedup %.2f  (helper %.0f%%)\n",
				name, report.Int(res.Cycles), res.SpeedupOver(base), 100*res.HelperCompletion())
		}
	}
	fmt.Println("all results verified identical to sequential execution")
}

// buildFootprint reports the workload's total simulated bytes.
func buildFootprint() int {
	_, l := buildSpMV()
	return l.FootprintBytes()
}
