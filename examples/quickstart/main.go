// Quickstart: cascade a simple unparallelizable loop.
//
// The loop is a classic loop-carried-looking recurrence the compiler
// cannot parallelize (the X(K(i)) scatter may collide), computing
//
//	X(K(i)) = X(K(i)) + W(i)
//
// We run it sequentially, then under cascaded execution with the
// restructuring helper, on the simulated 4-way Pentium Pro server, and
// verify the results are bit-for-bit identical.
package main

import (
	"fmt"
	"log"

	"repro/internal/cascade"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// buildLoop allocates the arrays and describes the loop's references and
// value semantics. A fresh copy per run keeps comparisons fair.
func buildLoop(n int) (*memsim.Space, *loopir.Loop) {
	space := memsim.NewSpace()
	x := space.Alloc("X", n, 8, 8)
	k := space.Alloc("K", n, 4, 4)
	w := space.Alloc("W", n, 8, 8)
	x.Fill(func(i int) float64 { return float64(i) })
	k.Fill(func(i int) float64 { return float64((i * 31) % n) }) // scatter pattern
	w.Fill(func(i int) float64 { return 0.25 * float64(i%17) })

	xref := loopir.Ref{Array: x, Index: loopir.Indirect{Tbl: k, Entry: loopir.Ident}}
	loop := &loopir.Loop{
		Name:  "scatter-add",
		Iters: n,
		RO:    []loopir.Ref{{Array: w, Index: loopir.Ident}},
		RW:    []loopir.Ref{xref},
		Writes: []loopir.Ref{
			xref,
		},
		PreCycles:   1,
		FinalCycles: 2,
		Final: func(_ int, pre, rw []float64) []float64 {
			return []float64{rw[0] + pre[0]}
		},
	}
	if err := loop.Validate(); err != nil {
		log.Fatal(err)
	}
	return space, loop
}

func main() {
	const n = 1 << 20 // 8MB of X: far beyond the caches

	// 1. Sequential baseline on one processor of the 4-way machine.
	_, seqLoop := buildLoop(n)
	seqMachine := machine.MustNew(machine.PentiumPro(4))
	baseline := cascade.RunSequential(seqMachine, seqLoop, true)
	want := seqLoop.Writes[0].Array.Snapshot()

	// 2. Cascaded execution, restructuring helper, 64KB chunks.
	space, casLoop := buildLoop(n)
	casMachine := machine.MustNew(machine.PentiumPro(4))
	opts, err := cascade.NewOptions(
		cascade.WithHelper(cascade.HelperRestructure),
		cascade.WithSpace(space),
	)
	if err != nil {
		log.Fatal(err)
	}
	result, err := cascade.Run(casMachine, casLoop, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Same answer?
	if eq, idx := casLoop.Writes[0].Array.Equal(want); !eq {
		log.Fatalf("cascaded result diverged at element %d", idx)
	}

	fmt.Printf("sequential: %d cycles\n", baseline.Cycles)
	fmt.Printf("cascaded:   %d cycles over %d chunks (helper completed %.0f%% of iterations)\n",
		result.Cycles, result.Chunks, 100*result.HelperCompletion())
	fmt.Printf("speedup:    %.2fx, exec-phase L2 misses %d -> %d\n",
		result.SpeedupOver(baseline), baseline.ExecL2.Misses, result.ExecL2.Misses)
	fmt.Println("results verified bit-for-bit identical")
}
