// Chunksweep: tune the chunk size for your own loop.
//
// Chunk size is cascaded execution's one tuning knob (§2.2): too small
// and control-transfer overhead dominates; too large and the chunk
// overruns the caches the helper warmed. This example sweeps chunk sizes
// for a user-defined stencil loop on both simulated machines and prints
// the sweet spot, mirroring the methodology behind Figure 6.
package main

import (
	"fmt"
	"log"

	"repro/internal/cascade"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/report"
)

const n = 1 << 20 // 8MB per array

// buildStencil is a three-array weighted combine whose operands share one
// cache-set congruence class — contiguous multi-megabyte Fortran arrays
// land this way — so the sequential walk thrashes the 2-way caches.
func buildStencil() (*memsim.Space, *loopir.Loop) {
	s := memsim.NewSpace()
	a := s.AllocAt("A", n, 8, 0, 1<<20)
	b := s.AllocAt("B", n, 8, 0, 1<<20)
	c := s.AllocAt("C", n, 8, 0, 1<<20)
	dst := s.AllocAt("DST", n, 8, 64<<10, 1<<20)
	a.Fill(func(i int) float64 { return float64(i % 1009) })
	b.Fill(func(i int) float64 { return float64(i % 757) })
	c.Fill(func(i int) float64 { return float64(i % 389) })
	loop := &loopir.Loop{
		Name:  "combine3",
		Iters: n,
		RO: []loopir.Ref{
			{Array: a, Index: loopir.Ident},
			{Array: b, Index: loopir.Ident},
			{Array: c, Index: loopir.Ident},
		},
		Writes: []loopir.Ref{{Array: dst, Index: loopir.Ident}},
		// Weighted sum: 3 multiply-adds.
		PreCycles: 6, FinalCycles: 2,
		NPre: 1,
		Pre: func(_ int, ro []float64) []float64 {
			return []float64{0.5*ro[0] + 0.3*ro[1] + 0.2*ro[2]}
		},
		Final: func(_ int, pre, _ []float64) []float64 { return pre },
	}
	if err := loop.Validate(); err != nil {
		log.Fatal(err)
	}
	return s, loop
}

func main() {
	// The library can also pick the chunk size automatically: AutoTune
	// probes each candidate on a prefix of the loop (the paper's "examined
	// empirically" methodology, §2.2/Figure 6, as an API).
	best, trials, err := cascade.AutoTune(machine.PentiumPro(4),
		func() (*memsim.Space, *loopir.Loop, error) {
			s, l := buildStencil()
			return s, l, nil
		},
		cascade.HelperRestructure, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AutoTune over %d candidates picked %s chunks\n\n",
		len(trials), report.KB(best))

	for _, cfg := range []machine.Config{machine.PentiumPro(4), machine.R10000(8)} {
		_, base := buildStencil()
		baseline := cascade.RunSequential(machine.MustNew(cfg), base, true)

		fmt.Printf("%s (%d procs): sequential %s cycles\n",
			cfg.Name, cfg.Procs, report.Int(baseline.Cycles))
		bestKB, bestSpeed := 0, 0.0
		for _, kb := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
			space, loop := buildStencil()
			opts, err := cascade.NewOptions(
				cascade.WithHelper(cascade.HelperRestructure),
				cascade.WithSpace(space),
				cascade.WithChunkBytes(kb*1024),
			)
			if err != nil {
				log.Fatal(err)
			}
			res, err := cascade.Run(machine.MustNew(cfg), loop, opts)
			if err != nil {
				log.Fatal(err)
			}
			sp := res.SpeedupOver(baseline)
			fmt.Printf("  %5dKB chunks: %12s cycles  speedup %.2f  helper %.0f%%\n",
				kb, report.Int(res.Cycles), sp, 100*res.HelperCompletion())
			if sp > bestSpeed {
				bestSpeed, bestKB = sp, kb
			}
		}
		fmt.Printf("  -> best: %dKB chunks at %.2fx\n\n", bestKB, bestSpeed)
	}
}
