// PIC: a miniature particle-in-cell mover built directly on the library's
// API — the workload class the paper's introduction motivates (wave5's
// PARMVR is a PIC mover).
//
// Three phases per step, each an unparallelizable loop the library
// cascades independently:
//
//	gather:  F(i)   = E(C(i)) * Q(i)     (random gather from the grid)
//	push:    V(i)  += dt * F(i)          (lockstep streams)
//	deposit: R(C(i)) += Q(i)             (random scatter to the grid)
//
// The example runs one full step sequentially and cascaded (prefetch and
// restructure) on the 8-way R10000 and reports per-phase speedups —
// illustrating the paper's finding that gathers restructure brilliantly
// while scatters barely benefit.
package main

import (
	"fmt"
	"log"

	"repro/internal/cascade"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

const (
	particles = 1 << 20 // 8MB per particle array
	cells     = 1 << 14 // 128KB grid
	dt        = 0.01
)

// step holds one PIC step's loops over a fresh dataset.
type step struct {
	space *memsim.Space
	loops []*loopir.Loop
}

func buildStep() *step {
	s := memsim.NewSpace()
	// Particle arrays on conflicting congruence classes, as contiguous
	// Fortran COMMON layout would produce.
	f := s.AllocAt("F", particles, 8, 0, 1<<20)
	v := s.AllocAt("V", particles, 8, 0, 1<<20)
	q := s.AllocAt("Q", particles, 8, 128<<10, 1<<20)
	c := s.AllocAt("C", particles, 4, 192<<10, 1<<20)
	e := s.Alloc("E", cells, 8, 4096)
	r := s.Alloc("R", cells, 8, 4096)

	rng := uint64(42)
	next := func() uint64 { rng = rng*6364136223846793005 + 1; return rng }
	q.Fill(func(int) float64 { return 1 + float64(next()%100)/100 })
	v.Fill(func(int) float64 { return float64(next()%200)/100 - 1 })
	e.Fill(func(int) float64 { return float64(next()%400)/100 - 2 })
	c.Fill(func(int) float64 { return float64(next() % cells) })

	gatherRef := loopir.Indirect{Tbl: c, Entry: loopir.Ident}
	rref := loopir.Ref{Array: r, Index: gatherRef}
	loops := []*loopir.Loop{
		{
			Name:  "gather",
			Iters: particles,
			RO: []loopir.Ref{
				{Array: e, Index: gatherRef},
				{Array: q, Index: loopir.Ident},
			},
			Writes:    []loopir.Ref{{Array: f, Index: loopir.Ident}},
			PreCycles: 6, FinalCycles: 2,
			NPre: 1,
			Pre:  func(_ int, ro []float64) []float64 { return []float64{ro[0] * ro[1]} },
			Final: func(_ int, pre, _ []float64) []float64 {
				return pre
			},
		},
		{
			Name:  "push",
			Iters: particles,
			RO:    []loopir.Ref{{Array: f, Index: loopir.Ident}},
			RW:    []loopir.Ref{{Array: v, Index: loopir.Ident}},
			Writes: []loopir.Ref{
				{Array: v, Index: loopir.Ident},
			},
			PreCycles: 4, FinalCycles: 3,
			NPre: 1,
			Pre:  func(_ int, ro []float64) []float64 { return []float64{dt * ro[0]} },
			Final: func(_ int, pre, rw []float64) []float64 {
				return []float64{rw[0] + pre[0]}
			},
		},
		{
			Name:  "deposit",
			Iters: particles,
			RO:    []loopir.Ref{{Array: q, Index: loopir.Ident}},
			RW:    []loopir.Ref{rref},
			Writes: []loopir.Ref{
				rref,
			},
			PreCycles: 0, FinalCycles: 4,
			Final: func(_ int, pre, rw []float64) []float64 {
				return []float64{rw[0] + pre[0]}
			},
		},
	}
	for _, l := range loops {
		if err := l.Validate(); err != nil {
			log.Fatal(err)
		}
	}
	return &step{space: s, loops: loops}
}

func main() {
	// Both machines: the contrast is the paper's story — on the R10000
	// the compiler's own prefetching already hides the strided misses, so
	// only restructuring (which removes the gather itself) helps, while
	// the Pentium Pro benefits from both helpers.
	for _, cfg := range []machine.Config{machine.PentiumPro(4), machine.R10000(8)} {
		fmt.Printf("=== %s (%d procs) ===\n", cfg.Name, cfg.Procs)

		seq := buildStep()
		m := machine.MustNew(cfg)
		seqCycles := make([]int64, len(seq.loops))
		for i, l := range seq.loops {
			seqCycles[i] = cascade.RunSequential(m, l, true).Cycles
		}

		for _, helper := range []cascade.Helper{cascade.HelperPrefetch, cascade.HelperRestructure} {
			st := buildStep()
			mm := machine.MustNew(cfg)
			fmt.Printf("%s helper:\n", helper)
			var total, seqTotal int64
			opts, err := cascade.NewOptions(
				cascade.WithHelper(helper),
				cascade.WithSpace(st.space),
			)
			if err != nil {
				log.Fatal(err)
			}
			for i, l := range st.loops {
				res, err := cascade.Run(mm, l, opts)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-8s %12d cycles  speedup %.2f  (helper %.0f%%)\n",
					l.Name, res.Cycles, float64(seqCycles[i])/float64(res.Cycles),
					100*res.HelperCompletion())
				total += res.Cycles
				seqTotal += seqCycles[i]
			}
			fmt.Printf("  %-8s %12d cycles  speedup %.2f\n\n", "step", total,
				float64(seqTotal)/float64(total))
		}
	}
}
