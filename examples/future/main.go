// Future: project cascaded execution onto machines whose memory latency
// keeps growing relative to execution rate — the question §3.4 of the
// paper asks with its synthetic loop.
//
// The example defines a family of hypothetical machines (today's Pentium
// Pro geometry with memory latencies from 58 up to 1000 cycles), runs the
// sparse synthetic loop under unbounded-processor cascading on each, and
// prints the speedup trend: the further memory recedes, the more
// cascaded execution pays.
package main

import (
	"fmt"
	"log"

	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/synthetic"
)

func futureMachine(memLatency int64) machine.Config {
	cfg := machine.PentiumPro(1)
	cfg.Name = fmt.Sprintf("future-mem%d", memLatency)
	cfg.MemLatency = memLatency
	cfg.MemDesc = fmt.Sprintf("%d", memLatency)
	cfg.C2CLatency = memLatency
	return cfg
}

func main() {
	const n = 1 << 20 // 4MB arrays
	params := synthetic.Sparse(n)

	fmt.Println("sparse synthetic loop, restructured helper, unbounded processors, 2KB chunks")
	fmt.Printf("%-10s %14s %14s %9s\n", "mem (cy)", "sequential", "cascaded", "speedup")
	for _, lat := range []int64{58, 100, 200, 400, 700, 1000} {
		cfg := futureMachine(lat)

		_, lbase, err := synthetic.Build(params)
		if err != nil {
			log.Fatal(err)
		}
		base, err := cascade.SequentialBaseline(cfg, lbase)
		if err != nil {
			log.Fatal(err)
		}

		space, l, err := synthetic.Build(params)
		if err != nil {
			log.Fatal(err)
		}
		opts, err := cascade.NewOptions(
			cascade.WithHelper(cascade.HelperRestructure),
			cascade.WithChunkBytes(2*1024),
			cascade.WithSpace(space),
			cascade.WithPriorParallel(false),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cascade.RunUnbounded(cfg, l, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %14d %14d %8.1fx\n", lat, base.Cycles, res.Cycles, res.SpeedupOver(base))
	}
}
